#include "net/queue.hpp"

#include <gtest/gtest.h>

namespace powertcp::net {
namespace {

Packet pkt(FlowId flow, std::int32_t payload, std::uint8_t prio = 0,
           NodeId dst = 0) {
  Packet p;
  p.flow = flow;
  p.payload_bytes = payload;
  p.priority = prio;
  p.dst = dst;
  return p;
}

TEST(FifoQueue, PopsInArrivalOrder) {
  FifoQueue q;
  q.push(pkt(1, 100));
  q.push(pkt(2, 100));
  EXPECT_EQ(q.pop()->flow, 1u);
  EXPECT_EQ(q.pop()->flow, 2u);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(FifoQueue, TracksBytesIncludingHeaders) {
  FifoQueue q;
  q.push(pkt(1, 1000));
  EXPECT_EQ(q.bytes(), 1000 + kHeaderBytes);
  q.push(pkt(2, 500));
  EXPECT_EQ(q.bytes(), 1500 + 2 * kHeaderBytes);
  q.pop();
  EXPECT_EQ(q.bytes(), 500 + kHeaderBytes);
}

TEST(FifoQueue, PeekMatchesPop) {
  FifoQueue q;
  q.push(pkt(9, 100));
  ASSERT_NE(q.peek_next(), nullptr);
  EXPECT_EQ(q.peek_next()->flow, 9u);
  EXPECT_EQ(q.pop()->flow, 9u);
  EXPECT_EQ(q.peek_next(), nullptr);
}

TEST(PriorityQueue, LowerBandWins) {
  PriorityQueue q(8);
  q.push(pkt(1, 100, 5));
  q.push(pkt(2, 100, 1));
  q.push(pkt(3, 100, 3));
  EXPECT_EQ(q.pop()->flow, 2u);
  EXPECT_EQ(q.pop()->flow, 3u);
  EXPECT_EQ(q.pop()->flow, 1u);
}

TEST(PriorityQueue, FifoWithinBand) {
  PriorityQueue q(8);
  q.push(pkt(1, 100, 2));
  q.push(pkt(2, 100, 2));
  EXPECT_EQ(q.pop()->flow, 1u);
  EXPECT_EQ(q.pop()->flow, 2u);
}

TEST(PriorityQueue, OutOfRangePriorityClampsToLowest) {
  PriorityQueue q(4);
  q.push(pkt(1, 100, 200));
  q.push(pkt(2, 100, 3));
  // Both land in band 3 -> FIFO.
  EXPECT_EQ(q.pop()->flow, 1u);
}

TEST(PriorityQueue, AggregateAccounting) {
  PriorityQueue q(8);
  q.push(pkt(1, 100, 0));
  q.push(pkt(2, 200, 7));
  EXPECT_EQ(q.packets(), 2u);
  EXPECT_EQ(q.bytes(), 300 + 2 * kHeaderBytes);
  EXPECT_EQ(q.band_bytes(7), 200 + kHeaderBytes);
  q.pop();
  EXPECT_EQ(q.packets(), 1u);
}

TEST(PriorityQueue, RejectsNonPositiveBands) {
  EXPECT_THROW(PriorityQueue(0), std::invalid_argument);
}

TEST(VoqSet, ClassifiesByDestination) {
  // Even node ids -> VOQ 0, odd -> VOQ 1.
  VoqSet v(2, [](NodeId n) { return static_cast<int>(n % 2); });
  v.push(pkt(1, 100, 0, /*dst=*/4));
  v.push(pkt(2, 100, 0, /*dst=*/5));
  EXPECT_EQ(v.voq_bytes(0), 100 + kHeaderBytes);
  EXPECT_EQ(v.voq_bytes(1), 100 + kHeaderBytes);
  EXPECT_EQ(v.pop_from(0)->flow, 1u);
  EXPECT_EQ(v.pop_from(1)->flow, 2u);
}

TEST(VoqSet, PopFromEmptyVoqIsEmpty) {
  VoqSet v(2, [](NodeId) { return 0; });
  EXPECT_FALSE(v.pop_from(1).has_value());
}

TEST(VoqSet, TotalsAcrossQueues) {
  VoqSet v(3, [](NodeId n) { return static_cast<int>(n); });
  v.push(pkt(1, 100, 0, 0));
  v.push(pkt(2, 200, 0, 2));
  EXPECT_EQ(v.total_packets(), 2u);
  EXPECT_EQ(v.total_bytes(), 300 + 2 * kHeaderBytes);
  v.pop_from(2);
  EXPECT_EQ(v.total_bytes(), 100 + kHeaderBytes);
}

TEST(VoqSet, BadClassifierIndexThrows) {
  VoqSet v(2, [](NodeId) { return 7; });
  EXPECT_THROW(v.push(pkt(1, 100)), std::out_of_range);
}

TEST(VoqSet, PeekDoesNotRemove) {
  VoqSet v(1, [](NodeId) { return 0; });
  v.push(pkt(5, 100));
  EXPECT_EQ(v.peek(0)->flow, 5u);
  EXPECT_EQ(v.total_packets(), 1u);
}

TEST(FifoQueue, RingWrapsAcrossManyPushPopCycles) {
  // The ring recycles its storage: oscillating around the growth
  // boundary and wrapping head/tail many times must preserve FIFO
  // order and byte accounting.
  FifoQueue q;
  FlowId next = 1;
  FlowId expect = 1;
  for (int cycle = 0; cycle < 100; ++cycle) {
    for (int i = 0; i < 7; ++i) q.push(pkt(next++, 100));
    for (int i = 0; i < 5; ++i) {
      auto p = q.pop();
      ASSERT_TRUE(p.has_value());
      EXPECT_EQ(p->flow, expect++);
    }
  }
  EXPECT_EQ(q.packets(), 200u);
  EXPECT_EQ(q.bytes(), 200 * (100 + kHeaderBytes));
  while (auto p = q.pop()) EXPECT_EQ(p->flow, expect++);
  EXPECT_EQ(q.bytes(), 0);
  EXPECT_TRUE(q.empty());
}

TEST(PriorityQueue, BandBytesCountersTrackPushAndPop) {
  PriorityQueue q(4);
  q.push(pkt(1, 100, 0));
  q.push(pkt(2, 200, 2));
  q.push(pkt(3, 300, 2));
  EXPECT_EQ(q.band_bytes(0), 100 + kHeaderBytes);
  EXPECT_EQ(q.band_bytes(1), 0);
  EXPECT_EQ(q.band_bytes(2), 500 + 2 * kHeaderBytes);
  q.pop();  // drains band 0
  EXPECT_EQ(q.band_bytes(0), 0);
  q.pop();  // first of band 2
  EXPECT_EQ(q.band_bytes(2), 300 + kHeaderBytes);
  q.pop();
  EXPECT_EQ(q.band_bytes(2), 0);
  EXPECT_EQ(q.bytes(), 0);
}

TEST(PriorityQueue, BandBytesCountsClampedPushesInLowestBand) {
  PriorityQueue q(2);
  q.push(pkt(1, 100, 7));  // clamps to band 1
  EXPECT_EQ(q.band_bytes(1), 100 + kHeaderBytes);
  EXPECT_EQ(q.band_bytes(0), 0);
}

TEST(PriorityQueue, BandBytesOutOfRangeThrows) {
  PriorityQueue q(2);
  EXPECT_THROW(q.band_bytes(2), std::out_of_range);
}

}  // namespace
}  // namespace powertcp::net
