#include "net/circuit.hpp"

#include <gtest/gtest.h>

#include <set>

namespace powertcp::net {
namespace {

using sim::microseconds;

TEST(CircuitSchedule, RejectsDegenerateConfigs) {
  EXPECT_THROW(CircuitSchedule(1, 10, 1), std::invalid_argument);
  EXPECT_THROW(CircuitSchedule(4, 0, 1), std::invalid_argument);
  EXPECT_THROW(CircuitSchedule(4, 10, -1), std::invalid_argument);
}

TEST(CircuitSchedule, SlotAndWeekArithmetic) {
  CircuitSchedule s(25, microseconds(225), microseconds(20));
  EXPECT_EQ(s.n_matchings(), 24);
  EXPECT_EQ(s.slot_length(), microseconds(245));
  EXPECT_EQ(s.week_length(), microseconds(245) * 24);
  EXPECT_EQ(s.slot_index(0), 0);
  EXPECT_EQ(s.slot_index(microseconds(245)), 1);
  EXPECT_EQ(s.slot_index(s.week_length()), 0);  // wraps
}

TEST(CircuitSchedule, DayNightBoundaries) {
  CircuitSchedule s(4, microseconds(100), microseconds(10));
  EXPECT_TRUE(s.is_day(0));
  EXPECT_TRUE(s.is_day(microseconds(100) - 1));
  EXPECT_FALSE(s.is_day(microseconds(100)));
  EXPECT_FALSE(s.is_day(microseconds(110) - 1));
  EXPECT_TRUE(s.is_day(microseconds(110)));
  EXPECT_EQ(s.day_end(microseconds(50)), microseconds(100));
  EXPECT_EQ(s.day_end(microseconds(105)), microseconds(100));
  EXPECT_EQ(s.next_day_start(microseconds(50)), microseconds(110));
  EXPECT_EQ(s.next_day_start(microseconds(105)), microseconds(110));
}

TEST(CircuitSchedule, RotorPeersShiftEachSlot) {
  CircuitSchedule s(5, microseconds(10), microseconds(1));
  EXPECT_EQ(s.peer_in_slot(0, 0), 1);
  EXPECT_EQ(s.peer_in_slot(0, 1), 2);
  EXPECT_EQ(s.peer_in_slot(4, 0), 0);  // wraps modulo N
}

TEST(CircuitSchedule, ActivePeerIsMinusOneAtNight) {
  CircuitSchedule s(4, microseconds(10), microseconds(2));
  EXPECT_EQ(s.active_peer(0, microseconds(5)), 1);
  EXPECT_EQ(s.active_peer(0, microseconds(11)), -1);
}

TEST(CircuitSchedule, EveryOrderedPairConnectsOncePerWeek) {
  const int n = 6;
  CircuitSchedule s(n, microseconds(10), microseconds(2));
  for (int src = 0; src < n; ++src) {
    std::set<int> peers;
    for (int slot = 0; slot < s.n_matchings(); ++slot) {
      const int p = s.peer_in_slot(src, slot);
      EXPECT_NE(p, src);
      peers.insert(p);
    }
    EXPECT_EQ(peers.size(), static_cast<std::size_t>(n - 1));
  }
}

TEST(CircuitSchedule, MatchingsArePermutations) {
  // In each slot, no two sources share a destination.
  const int n = 7;
  CircuitSchedule s(n, microseconds(10), microseconds(2));
  for (int slot = 0; slot < s.n_matchings(); ++slot) {
    std::set<int> dsts;
    for (int src = 0; src < n; ++src) {
      dsts.insert(s.peer_in_slot(src, slot));
    }
    EXPECT_EQ(dsts.size(), static_cast<std::size_t>(n));
  }
}

TEST(CircuitSchedule, NextConnectionFindsTheRightSlot) {
  CircuitSchedule s(4, microseconds(10), microseconds(2));
  // Slot k connects src -> (src + k + 1) mod 4. From t=0, src 0 -> dst 2
  // happens in slot 1, i.e. day start at 12us.
  EXPECT_EQ(s.next_connection(0, 2, 0), microseconds(12));
  // src 0 -> dst 1 is slot 0, active now.
  EXPECT_EQ(s.next_connection(0, 1, 0), 0);
  // After slot 0's day ends, the next 0->1 connection is a week away.
  EXPECT_EQ(s.next_connection(0, 1, microseconds(11)),
            s.week_length());
}

TEST(CircuitSchedule, NextConnectionMidDayReturnsCurrentDay) {
  CircuitSchedule s(4, microseconds(10), microseconds(2));
  // At t=5 (mid-day of slot 0), 0 -> 1 is connected right now: the
  // returned day start is in the past but its day is still running.
  const auto start = s.next_connection(0, 1, microseconds(5));
  EXPECT_EQ(start, 0);
  EXPECT_GT(start + s.day(), microseconds(5));
}

TEST(CircuitSchedule, NextConnectionRejectsSelf) {
  CircuitSchedule s(4, microseconds(10), microseconds(2));
  EXPECT_THROW(s.next_connection(2, 2, 0), std::invalid_argument);
}

TEST(CircuitPort, DestructorCancelsThePendingWakeup) {
  // kick() on an empty VOQ set schedules a retry at the next day start;
  // that callback captures the port. Destroying the port must cancel
  // it — the simulator then runs nothing (and nothing dangles).
  sim::Simulator simulator;
  CircuitSchedule schedule(4, microseconds(10), microseconds(2));
  VoqSet voqs(4, [](NodeId dst) { return static_cast<int>(dst) % 4; });
  auto port = std::make_unique<CircuitPort>(simulator,
                                            sim::Bandwidth::gbps(100),
                                            microseconds(1), &voqs,
                                            &schedule, /*my_tor=*/0);
  port->kick();  // day, but VOQ empty: retry armed for the next day
  port.reset();
  simulator.run();
  EXPECT_EQ(simulator.events_executed(), 0u);
  EXPECT_FALSE(simulator.pending());
}

}  // namespace
}  // namespace powertcp::net
