#include "net/packet.hpp"

#include <gtest/gtest.h>

namespace powertcp::net {
namespace {

TEST(IntHeader, StartsEmpty) {
  IntHeader h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0);
}

TEST(IntHeader, PushAppendsInOrder) {
  IntHeader h;
  for (int i = 0; i < 3; ++i) {
    IntHopRecord rec;
    rec.qlen_bytes = i * 100;
    h.push(rec);
  }
  ASSERT_EQ(h.size(), 3);
  EXPECT_EQ(h.hop(0).qlen_bytes, 0);
  EXPECT_EQ(h.hop(2).qlen_bytes, 200);
}

TEST(IntHeader, OverflowThrows) {
  IntHeader h;
  for (int i = 0; i < kMaxIntHops; ++i) h.push(IntHopRecord{});
  EXPECT_THROW(h.push(IntHopRecord{}), std::length_error);
}

TEST(IntHeader, ClearResets) {
  IntHeader h;
  h.push(IntHopRecord{});
  h.clear();
  EXPECT_TRUE(h.empty());
}

TEST(Packet, WireBytesIncludesHeader) {
  Packet p;
  p.payload_bytes = 1000;
  EXPECT_EQ(p.wire_bytes(), 1000 + kHeaderBytes);
}

TEST(MakeAck, SwapsEndpointsAndEchoes) {
  Packet data;
  data.flow = 77;
  data.src = 1;
  data.dst = 2;
  data.seq = 5000;
  data.payload_bytes = 1000;
  data.ecn_marked = true;
  data.sent_time = sim::microseconds(3);
  IntHopRecord rec;
  rec.qlen_bytes = 1234;
  data.int_hdr.push(rec);

  const Packet ack = make_ack(data, 6000);
  EXPECT_EQ(ack.type, PacketType::kAck);
  EXPECT_EQ(ack.flow, 77u);
  EXPECT_EQ(ack.src, 2);
  EXPECT_EQ(ack.dst, 1);
  EXPECT_EQ(ack.ack_seq, 6000);
  EXPECT_EQ(ack.seq, 5000);
  EXPECT_TRUE(ack.ecn_echo);
  EXPECT_EQ(ack.sent_time, sim::microseconds(3));
  ASSERT_EQ(ack.int_hdr.size(), 1);
  EXPECT_EQ(ack.int_hdr.hop(0).qlen_bytes, 1234);
  EXPECT_EQ(ack.payload_bytes, 0);
  EXPECT_EQ(ack.priority, 0);
}

TEST(MakeAck, UnmarkedDataYieldsNoEcho) {
  Packet data;
  data.ecn_marked = false;
  EXPECT_FALSE(make_ack(data, 0).ecn_echo);
}

}  // namespace
}  // namespace powertcp::net
