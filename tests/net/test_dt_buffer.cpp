#include "net/dt_buffer.hpp"

#include <gtest/gtest.h>

namespace powertcp::net {
namespace {

TEST(DtSharedBuffer, EmptyBufferAdmitsEverything) {
  DtSharedBuffer b(10'000, 1.0);
  EXPECT_TRUE(b.admits(0, 1000));
}

TEST(DtSharedBuffer, HardCapacityIsRespected) {
  DtSharedBuffer b(1'000, 100.0);  // huge alpha: only capacity binds
  b.on_enqueue(900);
  EXPECT_FALSE(b.admits(0, 200));
  EXPECT_TRUE(b.admits(0, 100));
}

TEST(DtSharedBuffer, ThresholdScalesWithFreeMemory) {
  // alpha=1: a queue may hold at most the remaining free bytes.
  DtSharedBuffer b(10'000, 1.0);
  b.on_enqueue(6'000);  // free = 4000
  EXPECT_TRUE(b.admits(3'999, 1));
  EXPECT_FALSE(b.admits(4'000, 1));
}

TEST(DtSharedBuffer, SmallAlphaStarvesLongQueues) {
  DtSharedBuffer b(10'000, 0.5);
  b.on_enqueue(2'000);  // free = 8000, threshold = 4000
  EXPECT_TRUE(b.admits(3'999, 1));
  EXPECT_FALSE(b.admits(4'001, 1));
}

TEST(DtSharedBuffer, DequeueReleasesMemory) {
  DtSharedBuffer b(1'000, 1.0);
  b.on_enqueue(1'000);
  EXPECT_FALSE(b.admits(0, 1));
  b.on_dequeue(500);
  EXPECT_TRUE(b.admits(0, 400));
  EXPECT_EQ(b.used_bytes(), 500);
}

TEST(DtSharedBuffer, MultiQueueFairnessProperty) {
  // Classic DT steady state: with alpha=1 and N=2 persistent queues,
  // each settles at alpha/(1+alpha*N) = 1/3 of the buffer, leaving 1/3
  // free as the drop threshold.
  DtSharedBuffer b(9'000, 1.0);
  std::int64_t q1 = 0, q2 = 0;
  for (int i = 0; i < 100; ++i) {
    if (b.admits(q1, 100)) {
      b.on_enqueue(100);
      q1 += 100;
    }
    if (b.admits(q2, 100)) {
      b.on_enqueue(100);
      q2 += 100;
    }
  }
  EXPECT_LE(q1, 3'000);
  EXPECT_LE(q2, 3'000);
  EXPECT_GE(q1 + q2, 5'800);  // both queues reach the DT fixed point
}

TEST(DtSharedBuffer, AccessorsReflectConfig) {
  DtSharedBuffer b(1234, 2.5);
  EXPECT_EQ(b.total_bytes(), 1234);
  EXPECT_DOUBLE_EQ(b.alpha(), 2.5);
  EXPECT_EQ(b.used_bytes(), 0);
}

}  // namespace
}  // namespace powertcp::net
