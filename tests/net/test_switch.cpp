#include "net/switch_node.hpp"

#include <gtest/gtest.h>

#include <set>

#include "net/network.hpp"

namespace powertcp::net {
namespace {

/// Minimal leaf node counting arrivals.
class CounterNode final : public Node {
 public:
  CounterNode(sim::Simulator&, NodeId id, std::string name)
      : Node(id, std::move(name)) {}
  void receive(Packet pkt, int) override {
    ++count;
    last = std::move(pkt);
  }
  int count = 0;
  Packet last;
};

struct SwitchFixture : ::testing::Test {
  sim::Simulator simulator;
  net::Network network{simulator};
};

TEST_F(SwitchFixture, ForwardsAlongConfiguredRoute) {
  auto* sw = network.add_node<Switch>("sw", SwitchConfig{});
  auto* a = network.add_node<CounterNode>("a");
  auto* b = network.add_node<CounterNode>("b");
  network.connect(*sw, *a, sim::Bandwidth::gbps(10), 0);
  network.connect(*sw, *b, sim::Bandwidth::gbps(10), 0);
  network.compute_routes();

  Packet p;
  p.flow = 1;
  p.dst = b->id();
  sw->receive(std::move(p), 0);
  simulator.run();
  EXPECT_EQ(a->count, 0);
  EXPECT_EQ(b->count, 1);
}

TEST_F(SwitchFixture, MissingRouteThrows) {
  auto* sw = network.add_node<Switch>("sw", SwitchConfig{});
  Packet p;
  p.dst = 99;
  EXPECT_THROW(sw->receive(std::move(p), 0), std::logic_error);
}

TEST_F(SwitchFixture, EcmpIsDeterministicPerFlow) {
  // The same flow must always take the same parallel link (no packet
  // reordering across equal-cost paths).
  auto* sw = network.add_node<Switch>("sw", SwitchConfig{});
  auto* dst = network.add_node<CounterNode>("dst");
  const auto l1 = network.connect(*sw, *dst, sim::Bandwidth::gbps(10), 0);
  const auto l2 = network.connect(*sw, *dst, sim::Bandwidth::gbps(10), 0);
  network.compute_routes();
  for (int i = 0; i < 10; ++i) {
    Packet p;
    p.flow = 12345;
    p.dst = dst->id();
    p.payload_bytes = 100;
    sw->receive(std::move(p), 0);
  }
  simulator.run();
  const auto tx1 = sw->port(l1.a_port).tx_packets();
  const auto tx2 = sw->port(l2.a_port).tx_packets();
  EXPECT_TRUE((tx1 == 10u && tx2 == 0u) || (tx1 == 0u && tx2 == 10u));
}

TEST_F(SwitchFixture, EcmpSpreadsFlowsAcrossParallelLinks) {
  // Two parallel links between the switch and the destination: many
  // flows should use both.
  auto* sw = network.add_node<Switch>("sw", SwitchConfig{});
  auto* dst = network.add_node<CounterNode>("dst");
  const auto l1 = network.connect(*sw, *dst, sim::Bandwidth::gbps(10), 0);
  const auto l2 = network.connect(*sw, *dst, sim::Bandwidth::gbps(10), 0);
  network.compute_routes();
  ASSERT_NE(sw->routes_to(dst->id()), nullptr);
  EXPECT_EQ(sw->routes_to(dst->id())->size(), 2u);

  for (FlowId f = 0; f < 64; ++f) {
    Packet p;
    p.flow = f;
    p.dst = dst->id();
    p.payload_bytes = 100;
    sw->receive(std::move(p), 0);
  }
  simulator.run();
  EXPECT_EQ(dst->count, 64);
  const auto tx1 = sw->port(l1.a_port).tx_packets();
  const auto tx2 = sw->port(l2.a_port).tx_packets();
  EXPECT_EQ(tx1 + tx2, 64u);
  EXPECT_GT(tx1, 10u);  // both links carry a healthy share
  EXPECT_GT(tx2, 10u);
}

TEST_F(SwitchFixture, SharedBufferSpansPorts) {
  SwitchConfig cfg;
  cfg.buffer_bytes = 2'096;  // fits exactly two 1048-byte frames
  auto* sw = network.add_node<Switch>("sw", cfg);
  auto* a = network.add_node<CounterNode>("a");
  network.connect(*sw, *a, sim::Bandwidth::mbps(1), 0);
  network.compute_routes();
  for (int i = 0; i < 4; ++i) {
    Packet p;
    p.flow = static_cast<FlowId>(i);
    p.dst = a->id();
    p.payload_bytes = 1000;
    sw->receive(std::move(p), 0);
  }
  EXPECT_EQ(sw->total_drops(), 2u);
}

TEST_F(SwitchFixture, PriorityBandsConfigurableViaConfig) {
  SwitchConfig cfg;
  cfg.priority_bands = 8;
  auto* sw = network.add_node<Switch>("sw", cfg);
  auto* a = network.add_node<CounterNode>("a");
  network.connect(*sw, *a, sim::Bandwidth::mbps(10), 0);
  network.compute_routes();
  // Enqueue a low-priority packet first, then a high-priority one while
  // the first is serializing; a third low-priority waits behind.
  Packet lo1;
  lo1.dst = a->id();
  lo1.priority = 7;
  lo1.payload_bytes = 1000;
  lo1.flow = 1;
  Packet lo2 = lo1;
  lo2.flow = 2;
  Packet hi = lo1;
  hi.priority = 0;
  hi.flow = 3;
  sw->receive(std::move(lo1), 0);
  sw->receive(std::move(lo2), 0);
  sw->receive(std::move(hi), 0);
  simulator.run();
  EXPECT_EQ(a->count, 3);
  // The high-priority packet overtook lo2 (lo1 was already in service).
  EXPECT_EQ(a->last.flow, 2u);
}

TEST_F(SwitchFixture, SetRoutesRejectsEmptySet) {
  auto* sw = network.add_node<Switch>("sw", SwitchConfig{});
  EXPECT_THROW(sw->set_routes(1, {}), std::invalid_argument);
}

TEST_F(SwitchFixture, EcnPerGbpsScalesThresholds) {
  SwitchConfig cfg;
  cfg.ecn.enabled = true;
  cfg.ecn.kmin_bytes = 100;  // per Gbps
  cfg.ecn.kmax_bytes = 100;
  cfg.ecn_per_gbps = true;
  auto* sw = network.add_node<Switch>("sw", cfg);
  auto* a = network.add_node<CounterNode>("a");
  network.connect(*sw, *a, sim::Bandwidth::mbps(100), 0);  // 0.1 Gbps
  network.compute_routes();
  // Threshold = 100 * 0.1 = 10 bytes. The first packet enters service
  // with no backlog; the third arrives to a 1000-byte backlog and must
  // be marked.
  for (int i = 0; i < 3; ++i) {
    Packet p;
    p.flow = static_cast<FlowId>(i);
    p.dst = a->id();
    p.payload_bytes = 1000;
    sw->receive(std::move(p), 0);
  }
  simulator.run();
  EXPECT_TRUE(a->last.ecn_marked);
}

}  // namespace
}  // namespace powertcp::net
