#include "net/egress_port.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/node.hpp"

namespace powertcp::net {
namespace {

/// Records every packet it receives with the arrival time.
class SinkNode : public Node {
 public:
  SinkNode(sim::Simulator& simulator, NodeId id)
      : Node(id, "sink"), sim_(simulator) {}

  void receive(Packet pkt, int in_port) override {
    arrivals.push_back({sim_.now(), std::move(pkt), in_port});
  }

  struct Arrival {
    sim::TimePs t;
    Packet pkt;
    int in_port;
  };
  std::vector<Arrival> arrivals;

 private:
  sim::Simulator& sim_;
};

Packet data_pkt(FlowId flow, std::int32_t payload) {
  Packet p;
  p.flow = flow;
  p.type = PacketType::kData;
  p.payload_bytes = payload;
  return p;
}

struct PortFixture : ::testing::Test {
  sim::Simulator simulator;
  SinkNode sink{simulator, 0};

  std::unique_ptr<BasicPort> make_port(sim::Bandwidth bw,
                                       sim::TimePs prop) {
    auto port = std::make_unique<BasicPort>(simulator, bw, prop,
                                            std::make_unique<FifoQueue>());
    port->set_peer(&sink, 3);
    return port;
  }
};

TEST_F(PortFixture, DeliversAfterSerializationPlusPropagation) {
  auto port = make_port(sim::Bandwidth::gbps(25), sim::microseconds(1));
  port->enqueue(data_pkt(1, 1000));
  simulator.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  // 1048 B at 25 Gbps = 335.36 ns; + 1 us propagation.
  EXPECT_EQ(sink.arrivals[0].t,
            sim::Bandwidth::gbps(25).tx_time(1048) + sim::microseconds(1));
  EXPECT_EQ(sink.arrivals[0].in_port, 3);
}

TEST_F(PortFixture, BackToBackPacketsSpacedBySerialization) {
  auto port = make_port(sim::Bandwidth::gbps(10), 0);
  port->enqueue(data_pkt(1, 952));  // 1000 B wire = 800 ns at 10G
  port->enqueue(data_pkt(2, 952));
  simulator.run();
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(sink.arrivals[1].t - sink.arrivals[0].t,
            sim::Bandwidth::gbps(10).tx_time(1000));
}

TEST_F(PortFixture, IntStampedAtDequeueWithBacklogLeftBehind) {
  auto port = make_port(sim::Bandwidth::gbps(10), 0);
  port->set_int_enabled(true);
  // Packet 1 starts serializing immediately; 2 and 3 queue behind it.
  port->enqueue(data_pkt(1, 952));
  port->enqueue(data_pkt(2, 952));
  port->enqueue(data_pkt(3, 952));
  simulator.run();
  ASSERT_EQ(sink.arrivals.size(), 3u);
  const IntHeader& h1 = sink.arrivals[0].pkt.int_hdr;
  const IntHeader& h2 = sink.arrivals[1].pkt.int_hdr;
  const IntHeader& h3 = sink.arrivals[2].pkt.int_hdr;
  ASSERT_EQ(h1.size(), 1);
  // Packet 1 dequeued with an empty backlog (2 and 3 arrived after its
  // transmission began); packet 2 left packet 3 behind; packet 3 none.
  EXPECT_EQ(h1.hop(0).qlen_bytes, 0);
  EXPECT_EQ(h2.hop(0).qlen_bytes, 1000);
  EXPECT_EQ(h3.hop(0).qlen_bytes, 0);
  // txBytes counts bytes before each packet.
  EXPECT_EQ(h1.hop(0).tx_bytes, 0);
  EXPECT_EQ(h2.hop(0).tx_bytes, 1000);
  EXPECT_EQ(h3.hop(0).tx_bytes, 2000);
  EXPECT_EQ(h1.hop(0).bandwidth_bps, 10e9);
  // Timestamps are the dequeue instants, one serialization apart.
  EXPECT_EQ(h2.hop(0).ts - h1.hop(0).ts,
            sim::Bandwidth::gbps(10).tx_time(1000));
}

TEST_F(PortFixture, AcksAreNeverIntStamped) {
  auto port = make_port(sim::Bandwidth::gbps(10), 0);
  port->set_int_enabled(true);
  Packet ack;
  ack.type = PacketType::kAck;
  IntHopRecord echo;
  echo.qlen_bytes = 42;
  ack.int_hdr.push(echo);  // pretend echo from the data path
  port->enqueue(std::move(ack));
  simulator.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  // The echoed record must pass through untouched.
  ASSERT_EQ(sink.arrivals[0].pkt.int_hdr.size(), 1);
  EXPECT_EQ(sink.arrivals[0].pkt.int_hdr.hop(0).qlen_bytes, 42);
}

TEST_F(PortFixture, IntDisabledStampsNothing) {
  auto port = make_port(sim::Bandwidth::gbps(10), 0);
  port->enqueue(data_pkt(1, 1000));
  simulator.run();
  EXPECT_TRUE(sink.arrivals[0].pkt.int_hdr.empty());
}

TEST_F(PortFixture, SharedBufferDropsWhenFull) {
  auto port = make_port(sim::Bandwidth::mbps(1), 0);  // slow drain
  DtSharedBuffer buf(3'000, 10.0);
  port->set_shared_buffer(&buf);
  int admitted = 0;
  for (int i = 0; i < 5; ++i) {
    if (port->enqueue(data_pkt(static_cast<FlowId>(i), 952))) ++admitted;
  }
  EXPECT_EQ(admitted, 3);  // 3 x 1000 B fit, rest dropped
  EXPECT_EQ(port->drops(), 2u);
  simulator.run();
  EXPECT_EQ(sink.arrivals.size(), 3u);
  EXPECT_EQ(buf.used_bytes(), 0);  // all released after transmission
}

TEST_F(PortFixture, EcnStepMarkingAboveThreshold) {
  auto port = make_port(sim::Bandwidth::mbps(1), 0);
  EcnConfig ecn;
  ecn.enabled = true;
  ecn.kmin_bytes = 1'500;  // step profile
  ecn.kmax_bytes = 1'500;
  port->set_ecn(ecn, 1);
  for (int i = 0; i < 5; ++i) {
    port->enqueue(data_pkt(static_cast<FlowId>(i), 952));
  }
  simulator.run();
  ASSERT_EQ(sink.arrivals.size(), 5u);
  // Packet 0 went straight into service; packets 1,2 arrived to
  // backlogs of 0 and 1000 bytes (<= 1500): unmarked.
  EXPECT_FALSE(sink.arrivals[0].pkt.ecn_marked);
  EXPECT_FALSE(sink.arrivals[1].pkt.ecn_marked);
  EXPECT_FALSE(sink.arrivals[2].pkt.ecn_marked);
  // Packets 3,4 arrived to 2000, 3000 (> 1500): marked.
  EXPECT_TRUE(sink.arrivals[3].pkt.ecn_marked);
  EXPECT_TRUE(sink.arrivals[4].pkt.ecn_marked);
}

TEST_F(PortFixture, EcnIgnoresNonCapablePackets) {
  auto port = make_port(sim::Bandwidth::mbps(1), 0);
  EcnConfig ecn;
  ecn.enabled = true;
  ecn.kmin_bytes = 0;
  ecn.kmax_bytes = 0;
  port->set_ecn(ecn, 1);
  port->enqueue(data_pkt(1, 952));  // queue 0 -> at threshold boundary
  Packet p = data_pkt(2, 952);
  p.ecn_capable = false;
  port->enqueue(std::move(p));
  simulator.run();
  EXPECT_FALSE(sink.arrivals[1].pkt.ecn_marked);
}

TEST_F(PortFixture, SojournCallbackMeasuresWaiting) {
  auto port = make_port(sim::Bandwidth::gbps(10), 0);
  std::vector<sim::TimePs> sojourns;
  port->set_sojourn_callback(
      [&sojourns](sim::TimePs d) { sojourns.push_back(d); });
  port->enqueue(data_pkt(1, 952));
  port->enqueue(data_pkt(2, 952));
  simulator.run();
  ASSERT_EQ(sojourns.size(), 2u);
  EXPECT_EQ(sojourns[0], 0);  // started immediately
  EXPECT_EQ(sojourns[1], sim::Bandwidth::gbps(10).tx_time(1000));
}

TEST_F(PortFixture, QueueMonitorSeesPeaks) {
  auto port = make_port(sim::Bandwidth::mbps(1), 0);
  stats::QueueSeries series;
  port->set_queue_monitor(&series);
  for (int i = 0; i < 3; ++i) {
    port->enqueue(data_pkt(static_cast<FlowId>(i), 952));
  }
  simulator.run();
  EXPECT_EQ(series.max_bytes(), 2000);  // two packets behind the in-flight one
}

/// A forwarding peer (switch-like): burst drain must not engage
/// toward it — a train's deliveries would get their FIFO tie-break
/// seq at drain time and could reorder same-picosecond arrivals from
/// different upstream ports.
class ForwardingSink final : public SinkNode {
 public:
  using SinkNode::SinkNode;
  bool forwards() const override { return true; }
};

/// Runs `n_back_to_back` queued packets plus one that arrives while
/// the wire is busy, and returns the arrival times.
template <typename Sink>
std::vector<sim::TimePs> drain_times(std::uint32_t budget,
                                     int n_back_to_back) {
  sim::Simulator simulator;
  simulator.set_burst_budget(budget);
  Sink sink(simulator, 0);
  BasicPort port(simulator, sim::Bandwidth::gbps(10), sim::nanoseconds(50),
                 std::make_unique<FifoQueue>());
  port.set_peer(&sink, 0);
  for (int i = 0; i < n_back_to_back; ++i) {
    port.enqueue(data_pkt(static_cast<FlowId>(i), 952));  // 1000 B wire
  }
  // Lands mid-serialization of the first train: must wait for the
  // wire, not for some coarser burst boundary.
  simulator.schedule_at(sim::nanoseconds(1200), [&port] {
    port.enqueue(data_pkt(99, 952));
  });
  simulator.run();
  std::vector<sim::TimePs> times;
  for (const auto& a : sink.arrivals) times.push_back(a.t);
  return times;
}

TEST_F(PortFixture, BurstDrainDeliveryTimingIsExact) {
  // Budget 64 toward a non-forwarding endpoint engages dequeue-N; the
  // per-packet delivery times must match the per-event engine exactly
  // (packet i leaves the wire i serializations after drain start).
  const auto legacy = drain_times<SinkNode>(1, 4);
  const auto burst = drain_times<SinkNode>(64, 4);
  EXPECT_EQ(burst, legacy);
  ASSERT_EQ(burst.size(), 5u);
  const sim::TimePs ser = sim::Bandwidth::gbps(10).tx_time(1000);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(burst[static_cast<std::size_t>(i)],
              ser * (i + 1) + sim::nanoseconds(50));
  }
  // The straggler found the wire busy until 4 serializations in.
  EXPECT_EQ(burst[4], ser * 5 + sim::nanoseconds(50));
}

TEST_F(PortFixture, BurstBudgetCapsTheTrainWithoutChangingTiming) {
  const auto legacy = drain_times<SinkNode>(1, 8);
  const auto capped = drain_times<SinkNode>(3, 8);
  EXPECT_EQ(capped, legacy);
}

TEST_F(PortFixture, ForwardingPeerFallsBackToPerPacketPath) {
  // Toward a forwarding node the port must take the legacy path; the
  // observable schedule is identical either way — this pins that the
  // gate itself doesn't perturb timing.
  const auto legacy = drain_times<ForwardingSink>(1, 4);
  const auto burst = drain_times<ForwardingSink>(64, 4);
  EXPECT_EQ(burst, legacy);
}

TEST_F(PortFixture, BurstDrainKeepsTxCountersExact) {
  simulator.set_burst_budget(64);
  auto port = make_port(sim::Bandwidth::gbps(10), 0);
  for (int i = 0; i < 6; ++i) {
    port->enqueue(data_pkt(static_cast<FlowId>(i), 952));
  }
  simulator.run();
  EXPECT_EQ(sink.arrivals.size(), 6u);
  EXPECT_EQ(port->tx_packets(), 6u);
  EXPECT_EQ(port->tx_bytes(), 6'000);
}

TEST_F(PortFixture, TxCountersAccumulate) {
  auto port = make_port(sim::Bandwidth::gbps(10), 0);
  port->enqueue(data_pkt(1, 952));
  port->enqueue(data_pkt(2, 452));
  simulator.run();
  EXPECT_EQ(port->tx_packets(), 2u);
  EXPECT_EQ(port->tx_bytes(), 1000 + 500);
}

}  // namespace
}  // namespace powertcp::net
