#include "net/network.hpp"

#include <gtest/gtest.h>

#include "net/switch_node.hpp"

namespace powertcp::net {
namespace {

class LeafNode final : public Node {
 public:
  LeafNode(sim::Simulator&, NodeId id, std::string name)
      : Node(id, std::move(name)) {}
  void receive(Packet pkt, int) override {
    ++count;
    last = std::move(pkt);
  }
  int count = 0;
  Packet last;
};

struct NetworkFixture : ::testing::Test {
  sim::Simulator simulator;
  Network network{simulator};
};

TEST_F(NetworkFixture, AssignsSequentialNodeIds) {
  auto* a = network.add_node<LeafNode>("a");
  auto* b = network.add_node<LeafNode>("b");
  EXPECT_EQ(a->id(), 0);
  EXPECT_EQ(b->id(), 1);
  EXPECT_EQ(network.node_count(), 2u);
  EXPECT_EQ(&network.node(0), a);
}

TEST_F(NetworkFixture, ConnectCreatesPeeredPortsBothWays) {
  auto* a = network.add_node<LeafNode>("a");
  auto* b = network.add_node<LeafNode>("b");
  const auto link = network.connect(*a, *b, sim::Bandwidth::gbps(10),
                                    sim::microseconds(1));
  EXPECT_EQ(a->port(link.a_port).peer(), b);
  EXPECT_EQ(b->port(link.b_port).peer(), a);
  EXPECT_EQ(a->port(link.a_port).peer_in_port(), link.b_port);
}

TEST_F(NetworkFixture, AsymmetricBandwidths) {
  auto* a = network.add_node<LeafNode>("a");
  auto* b = network.add_node<LeafNode>("b");
  const auto link = network.connect(*a, sim::Bandwidth::gbps(100), *b,
                                    sim::Bandwidth::gbps(25), 0);
  EXPECT_EQ(a->port(link.a_port).bandwidth(), sim::Bandwidth::gbps(100));
  EXPECT_EQ(b->port(link.b_port).bandwidth(), sim::Bandwidth::gbps(25));
}

TEST_F(NetworkFixture, BfsRoutesLinearChain) {
  // a -- s1 -- s2 -- b : every switch must know both directions.
  auto* a = network.add_node<LeafNode>("a");
  auto* s1 = network.add_node<Switch>("s1", SwitchConfig{});
  auto* s2 = network.add_node<Switch>("s2", SwitchConfig{});
  auto* b = network.add_node<LeafNode>("b");
  network.connect(*a, *s1, sim::Bandwidth::gbps(10), 0);
  network.connect(*s1, *s2, sim::Bandwidth::gbps(10), 0);
  network.connect(*s2, *b, sim::Bandwidth::gbps(10), 0);
  network.compute_routes();

  Packet p;
  p.dst = b->id();
  p.payload_bytes = 100;
  s1->receive(std::move(p), 0);
  simulator.run();
  EXPECT_EQ(b->count, 1);

  Packet q;
  q.dst = a->id();
  q.payload_bytes = 100;
  s2->receive(std::move(q), 0);
  simulator.run();
  EXPECT_EQ(a->count, 1);
}

TEST_F(NetworkFixture, BfsInstallsAllEqualCostNextHops) {
  // Diamond: s0 -> {s1, s2} -> s3 -> leaf. s0 must hold two next hops.
  auto* s0 = network.add_node<Switch>("s0", SwitchConfig{});
  auto* s1 = network.add_node<Switch>("s1", SwitchConfig{});
  auto* s2 = network.add_node<Switch>("s2", SwitchConfig{});
  auto* s3 = network.add_node<Switch>("s3", SwitchConfig{});
  auto* leaf = network.add_node<LeafNode>("leaf");
  network.connect(*s0, *s1, sim::Bandwidth::gbps(10), 0);
  network.connect(*s0, *s2, sim::Bandwidth::gbps(10), 0);
  network.connect(*s1, *s3, sim::Bandwidth::gbps(10), 0);
  network.connect(*s2, *s3, sim::Bandwidth::gbps(10), 0);
  network.connect(*s3, *leaf, sim::Bandwidth::gbps(10), 0);
  network.compute_routes();

  const auto* routes = s0->routes_to(leaf->id());
  ASSERT_NE(routes, nullptr);
  EXPECT_EQ(routes->size(), 2u);
  // The longer path via s3 back up never appears at s1.
  const auto* s1_routes = s1->routes_to(leaf->id());
  ASSERT_NE(s1_routes, nullptr);
  EXPECT_EQ(s1_routes->size(), 1u);
}

TEST_F(NetworkFixture, RegisterLinkFeedsRouteComputation) {
  auto* sw = network.add_node<Switch>("sw", SwitchConfig{});
  auto* leaf = network.add_node<LeafNode>("leaf");
  // Wire manually instead of via connect().
  const int sp = sw->add_port(sim::Bandwidth::gbps(10), 0);
  auto port = std::make_unique<BasicPort>(simulator, sim::Bandwidth::gbps(10),
                                          0, std::make_unique<FifoQueue>());
  const int lp = leaf->attach_port(std::move(port));
  sw->port(sp).set_peer(leaf, lp);
  leaf->port(lp).set_peer(sw, sp);
  network.register_link(*sw, sp, *leaf, lp);
  network.compute_routes();
  ASSERT_NE(sw->routes_to(leaf->id()), nullptr);
}

TEST_F(NetworkFixture, AdoptRejectsWrongId) {
  auto node = std::make_unique<LeafNode>(simulator, /*id=*/5, "x");
  EXPECT_THROW(network.adopt(std::move(node)), std::invalid_argument);
}

TEST_F(NetworkFixture, EndToEndDeliveryThroughTwoSwitches) {
  auto* a = network.add_node<LeafNode>("a");
  auto* s1 = network.add_node<Switch>("s1", SwitchConfig{});
  auto* s2 = network.add_node<Switch>("s2", SwitchConfig{});
  auto* b = network.add_node<LeafNode>("b");
  network.connect(*a, *s1, sim::Bandwidth::gbps(10), sim::microseconds(1));
  network.connect(*s1, *s2, sim::Bandwidth::gbps(40), sim::microseconds(1));
  network.connect(*s2, *b, sim::Bandwidth::gbps(10), sim::microseconds(1));
  network.compute_routes();

  Packet p;
  p.dst = b->id();
  p.payload_bytes = 952;  // 1000 B wire
  p.flow = 3;
  a->port(0).enqueue(std::move(p));
  simulator.run();
  ASSERT_EQ(b->count, 1);
  // Arrival = 3 hops of store-and-forward + 3 propagation delays.
  const sim::TimePs expected = sim::Bandwidth::gbps(10).tx_time(1000) +
                               sim::Bandwidth::gbps(40).tx_time(1000) +
                               sim::Bandwidth::gbps(10).tx_time(1000) +
                               3 * sim::microseconds(1);
  EXPECT_EQ(simulator.now(), expected);
}

}  // namespace
}  // namespace powertcp::net
