/// AQM layer unit coverage: the step/RED verdict reproduces the
/// historical marking math draw-for-draw, the PI delay controller
/// integrates the normalized error with a bounded lazy catch-up, the
/// PIE/PI2 mark-vs-drop rules follow RFC 8033/9332, and the registry
/// resolves and rejects kinds.

#include "net/aqm.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace powertcp::net {
namespace {

EcnConfig dcqcn_profile() {
  EcnConfig ecn;
  ecn.enabled = true;
  ecn.kmin_bytes = 25'000;
  ecn.kmax_bytes = 100'000;
  ecn.pmax = 0.2;
  return ecn;
}

TEST(Aqm, StepRedMatchesHistoricalMarkingMath) {
  // Twin-RNG check of the pre-refactor EgressPort marking: no draw
  // below kmin or at/above kmax, one draw per packet in the band.
  const std::uint64_t seed = 0xfeed;
  const EcnConfig ecn = dcqcn_profile();
  StepRedAqm aqm(ecn, seed);
  sim::Rng ref(seed);
  for (std::int64_t q = 0; q <= 120'000; q += 500) {
    const AqmVerdict v = aqm.on_enqueue(q, /*ecn_capable=*/true, 0);
    EXPECT_FALSE(v.drop);
    bool want = false;
    if (q >= ecn.kmax_bytes) {
      want = true;
    } else if (q > ecn.kmin_bytes) {
      const double span =
          static_cast<double>(ecn.kmax_bytes - ecn.kmin_bytes);
      const double p =
          ecn.pmax * static_cast<double>(q - ecn.kmin_bytes) / span;
      want = ref.uniform() < p;
    }
    EXPECT_EQ(v.mark, want) << "queue_bytes=" << q;
  }
}

TEST(Aqm, StepRedIgnoresNonEctAndDisabledProfiles) {
  StepRedAqm aqm(dcqcn_profile(), 1);
  const AqmVerdict not_ect = aqm.on_enqueue(1'000'000, false, 0);
  EXPECT_FALSE(not_ect.mark);
  EXPECT_FALSE(not_ect.drop);
  StepRedAqm off(EcnConfig{}, 1);
  EXPECT_FALSE(off.on_enqueue(1'000'000, true, 0).mark);
}

TEST(Aqm, PiControllerIntegratesTheNormalizedDelayError) {
  // 8 Gbps -> 1e9 bytes/s, so queue bytes read directly as ns of
  // delay; gains chosen so two hand-computed steps stay unclamped.
  AqmSpec spec;
  spec.target_us = 100.0;
  spec.tupdate_us = 10.0;
  spec.alpha = 0.1;
  spec.beta = 0.01;
  PiDelayController pi(spec, sim::Bandwidth::gbps(8));
  const std::int64_t q = 150'000;  // 150 us of delay at 1e9 B/s

  // No whole tupdate elapsed yet: no step.
  EXPECT_DOUBLE_EQ(pi.update(q, sim::microseconds(5)), 0.0);
  // Step 1: 0.1*(150-100)/100 + 0.01*(150-0)/100 = 0.065.
  EXPECT_NEAR(pi.update(q, sim::microseconds(10)), 0.065, 1e-12);
  // Step 2: + 0.1*0.5 + 0.01*0 = 0.115.
  EXPECT_NEAR(pi.update(q, sim::microseconds(20)), 0.115, 1e-12);

  // Two elapsed intervals replayed in one lazy call land on the same
  // probability as stepping through them individually.
  PiDelayController lazy(spec, sim::Bandwidth::gbps(8));
  EXPECT_NEAR(lazy.update(q, sim::microseconds(20)), 0.115, 1e-12);
}

TEST(Aqm, PiControllerCatchUpIsBounded) {
  // Tiny gains: if the controller replayed a full 1 ms idle gap
  // (100 intervals) the saturated probability would decay to zero;
  // the kMaxCatchUpSteps bound keeps the decay small.
  AqmSpec spec;
  spec.target_us = 10.0;
  spec.tupdate_us = 10.0;
  spec.alpha = 0.001;
  spec.beta = 0.001;
  PiDelayController pi(spec, sim::Bandwidth::gbps(8));
  // Saturate with a huge standing queue (40 us delay vs 10 us target).
  sim::TimePs now = 0;
  for (int i = 0; i < 2000; ++i) {
    now += sim::microseconds(10);
    pi.update(40'000, now);
  }
  ASSERT_DOUBLE_EQ(pi.probability(), 1.0);
  // One update after a 1 ms idle gap with an empty queue.
  pi.update(0, now + sim::milliseconds(1));
  EXPECT_GT(pi.probability(), 0.9);
  EXPECT_LT(pi.probability(), 1.0);
}

TEST(Aqm, PieMarksEctBelowThresholdAndDropsAboveIt) {
  // Saturate the controller to p == 1 so every draw fires. With the
  // default ecn_threshold (0.1 < 1): ECT packets are dropped, since
  // p >= threshold; with threshold 1.0 they are marked instead.
  const auto saturate = [](PieAqm& aqm) {
    sim::TimePs now = 0;
    for (int i = 0; i < 2000; ++i) {
      now += sim::microseconds(20);
      aqm.on_enqueue(10'000'000, false, now);
    }
    return now;
  };
  AqmSpec spec;
  PieAqm drop_mode(spec, sim::Bandwidth::gbps(25), 7);
  sim::TimePs now = saturate(drop_mode);
  AqmVerdict v = drop_mode.on_enqueue(10'000'000, true, now);
  EXPECT_TRUE(v.drop);
  EXPECT_FALSE(v.mark);

  spec.ecn_threshold = 1.0;
  PieAqm mark_mode(spec, sim::Bandwidth::gbps(25), 7);
  now = saturate(mark_mode);
  v = mark_mode.on_enqueue(10'000'000, true, now);
  EXPECT_TRUE(v.mark);
  EXPECT_FALSE(v.drop);
  // Not-ECT traffic is dropped regardless of the threshold.
  v = mark_mode.on_enqueue(10'000'000, false, now);
  EXPECT_TRUE(v.drop);
  EXPECT_FALSE(v.mark);
}

TEST(Aqm, Pi2CouplesMarkingAndDroppingThroughTheBaseProbability) {
  // At base p' == 1: ECT marked with min(2p', 1) == 1, not-ECT
  // dropped with p'^2 == 1 — both deterministic.
  AqmSpec spec;
  Pi2Aqm aqm(spec, sim::Bandwidth::gbps(25), 11);
  sim::TimePs now = 0;
  for (int i = 0; i < 2000; ++i) {
    now += sim::microseconds(20);
    aqm.on_enqueue(10'000'000, false, now);
  }
  AqmVerdict v = aqm.on_enqueue(10'000'000, true, now);
  EXPECT_TRUE(v.mark);
  EXPECT_FALSE(v.drop);
  v = aqm.on_enqueue(10'000'000, false, now);
  EXPECT_TRUE(v.drop);
  EXPECT_FALSE(v.mark);
  EXPECT_DOUBLE_EQ(Pi2Aqm::kCoupling, 2.0);
}

// ---- CoDel -----------------------------------------------------------
// 8 Gbps -> 1e9 B/s, so queue bytes read directly as ns of sojourn:
// 200'000 B = 200 us, above the 100 us target; interval 400 us.

AqmSpec codel_spec() {
  AqmSpec spec;
  spec.kind = "codel";
  spec.target_us = 100.0;
  spec.interval_us = 400.0;
  return spec;
}

TEST(Aqm, CodelStaysQuietBelowTargetAndForAPartialInterval) {
  CodelAqm aqm(codel_spec(), sim::Bandwidth::gbps(8));
  // Below target: nothing, ever.
  for (int i = 0; i < 10; ++i) {
    const AqmVerdict v = aqm.on_enqueue(50'000, true, sim::microseconds(i));
    EXPECT_FALSE(v.mark);
    EXPECT_FALSE(v.drop);
  }
  // Above target, but not yet for a whole interval: still nothing.
  EXPECT_FALSE(aqm.on_enqueue(200'000, true, sim::microseconds(100)).mark);
  EXPECT_FALSE(aqm.on_enqueue(200'000, true, sim::microseconds(400)).mark);
  // A dip below target resets the streak — 399 us above is not enough.
  aqm.on_enqueue(0, true, sim::microseconds(450));
  EXPECT_FALSE(aqm.on_enqueue(200'000, true, sim::microseconds(500)).mark);
  EXPECT_FALSE(aqm.on_enqueue(200'000, true, sim::microseconds(899)).mark);
}

TEST(Aqm, CodelShootsOnTheSqrtCountControlLaw) {
  CodelAqm aqm(codel_spec(), sim::Bandwidth::gbps(8));
  aqm.on_enqueue(200'000, true, 0);  // arm: first_above = 400 us
  // A whole interval above target: first shot, count = 1.
  EXPECT_TRUE(aqm.on_enqueue(200'000, true, sim::microseconds(400)).mark);
  // Next shot is interval/sqrt(1) later; just before it, nothing.
  EXPECT_FALSE(aqm.on_enqueue(200'000, true, sim::microseconds(799)).mark);
  EXPECT_TRUE(aqm.on_enqueue(200'000, true, sim::microseconds(800)).mark);
  // count = 2: the gap shrinks to 400/sqrt(2) ~ 282.8 us.
  EXPECT_FALSE(aqm.on_enqueue(200'000, true, sim::microseconds(1082)).mark);
  EXPECT_TRUE(aqm.on_enqueue(200'000, true, sim::microseconds(1083)).mark);
}

TEST(Aqm, CodelMarksEctAndDropsNotEct) {
  CodelAqm ect(codel_spec(), sim::Bandwidth::gbps(8));
  ect.on_enqueue(200'000, true, 0);
  AqmVerdict v = ect.on_enqueue(200'000, true, sim::microseconds(400));
  EXPECT_TRUE(v.mark);
  EXPECT_FALSE(v.drop);

  CodelAqm not_ect(codel_spec(), sim::Bandwidth::gbps(8));
  not_ect.on_enqueue(200'000, false, 0);
  v = not_ect.on_enqueue(200'000, false, sim::microseconds(400));
  EXPECT_TRUE(v.drop);
  EXPECT_FALSE(v.mark);
}

TEST(Aqm, CodelResumesNearThePreviousDropRateOnQuickReentry) {
  CodelAqm aqm(codel_spec(), sim::Bandwidth::gbps(8));
  // Build up to count = 3: shots at 400 (count 1), 800 (2), ~1083 (3).
  aqm.on_enqueue(200'000, true, 0);
  ASSERT_TRUE(aqm.on_enqueue(200'000, true, sim::microseconds(400)).mark);
  ASSERT_TRUE(aqm.on_enqueue(200'000, true, sim::microseconds(800)).mark);
  ASSERT_TRUE(aqm.on_enqueue(200'000, true, sim::microseconds(1083)).mark);
  // Drain (exit dropping), then congest again within 8 intervals.
  aqm.on_enqueue(0, true, sim::microseconds(1100));
  aqm.on_enqueue(200'000, true, sim::microseconds(1200));  // re-arm
  // Re-entry shot after one interval; count resumes at 3 - 2 = 1...
  ASSERT_TRUE(aqm.on_enqueue(200'000, true, sim::microseconds(1600)).mark);
  ASSERT_TRUE(aqm.on_enqueue(200'000, true, sim::microseconds(2000)).mark);
  // ...so after the NEXT shot count is 2 and the following gap is the
  // resumed 400/sqrt(2) ~ 282.8 us, not a relearned 400 us.
  EXPECT_FALSE(aqm.on_enqueue(200'000, true, sim::microseconds(2282)).mark);
  EXPECT_TRUE(aqm.on_enqueue(200'000, true, sim::microseconds(2283)).mark);
}

TEST(Aqm, CodelRejectsNonPositiveTunables) {
  AqmSpec spec = codel_spec();
  spec.interval_us = 0.0;
  EXPECT_THROW(CodelAqm(spec, sim::Bandwidth::gbps(8)),
               std::invalid_argument);
  spec = codel_spec();
  spec.target_us = -1.0;
  EXPECT_THROW(CodelAqm(spec, sim::Bandwidth::gbps(8)),
               std::invalid_argument);
}

TEST(Aqm, RegistryBuildsEveryVariantAndRejectsUnknownKinds) {
  const AqmRegistry& reg = AqmRegistry::instance();
  EXPECT_EQ(reg.joined_names(), "red, pie, pi2, codel");
  for (const auto& name : reg.names()) {
    const auto aqm = reg.at(name).make(AqmSpec{}, dcqcn_profile(),
                                       sim::Bandwidth::gbps(25), 3);
    ASSERT_NE(aqm, nullptr);
    EXPECT_EQ(aqm->kind(), name);
  }
  EXPECT_EQ(reg.find("fq_codel"), nullptr);
  EXPECT_THROW(reg.at("fq_codel"), std::invalid_argument);
}

}  // namespace
}  // namespace powertcp::net
