#include "stats/timeseries.hpp"

#include <gtest/gtest.h>

namespace powertcp::stats {
namespace {

using sim::microseconds;

TEST(ThroughputSeries, BinsBytesByArrivalTime) {
  ThroughputSeries ts(0, microseconds(10));
  ts.add_bytes(microseconds(1), 1000);
  ts.add_bytes(microseconds(9), 1000);
  ts.add_bytes(microseconds(10), 500);
  ASSERT_EQ(ts.bin_count(), 2u);
  // 2000 bytes in 10us = 1.6 Gbps.
  EXPECT_DOUBLE_EQ(ts.gbps(0), 1.6);
  EXPECT_DOUBLE_EQ(ts.gbps(1), 0.4);
}

TEST(ThroughputSeries, IgnoresBytesBeforeOrigin) {
  ThroughputSeries ts(microseconds(100), microseconds(10));
  ts.add_bytes(microseconds(50), 1000);
  EXPECT_EQ(ts.bin_count(), 0u);
}

TEST(ThroughputSeries, OutOfRangeBinReadsZero) {
  ThroughputSeries ts(0, microseconds(10));
  EXPECT_DOUBLE_EQ(ts.gbps(7), 0.0);
}

TEST(ThroughputSeries, MeanAcrossBins) {
  ThroughputSeries ts(0, microseconds(10));
  ts.add_bytes(microseconds(5), 1000);   // bin 0: 0.8 Gbps
  ts.add_bytes(microseconds(15), 3000);  // bin 1: 2.4 Gbps
  EXPECT_DOUBLE_EQ(ts.mean_gbps(0, 2), 1.6);
}

TEST(ThroughputSeries, BinStartArithmetic) {
  ThroughputSeries ts(microseconds(5), microseconds(10));
  EXPECT_EQ(ts.bin_start(0), microseconds(5));
  EXPECT_EQ(ts.bin_start(3), microseconds(35));
}

TEST(QueueSeries, AtReturnsLastSampleBefore) {
  QueueSeries q;
  q.sample(microseconds(10), 100);
  q.sample(microseconds(20), 300);
  EXPECT_EQ(q.at(microseconds(5)), 0);
  EXPECT_EQ(q.at(microseconds(10)), 100);
  EXPECT_EQ(q.at(microseconds(15)), 100);
  EXPECT_EQ(q.at(microseconds(25)), 300);
}

TEST(QueueSeries, TracksMaximum) {
  QueueSeries q;
  q.sample(1, 5);
  q.sample(2, 50);
  q.sample(3, 10);
  EXPECT_EQ(q.max_bytes(), 50);
}

TEST(QueueSeries, TimeWeightedMeanOfStep) {
  QueueSeries q;
  q.sample(0, 0);
  q.sample(microseconds(5), 1000);  // second half at 1000
  EXPECT_NEAR(q.time_weighted_mean(0, microseconds(10)), 500.0, 1e-6);
}

TEST(QueueSeries, TimeWeightedMeanConstantLevel) {
  QueueSeries q;
  q.sample(0, 700);
  EXPECT_NEAR(q.time_weighted_mean(microseconds(3), microseconds(9)), 700.0,
              1e-6);
}

TEST(QueueSeries, EmptySeriesMeansZero) {
  QueueSeries q;
  EXPECT_EQ(q.at(microseconds(1)), 0);
  EXPECT_DOUBLE_EQ(q.time_weighted_mean(0, microseconds(1)), 0.0);
}

}  // namespace
}  // namespace powertcp::stats
