#include "stats/fct_recorder.hpp"

#include <gtest/gtest.h>

namespace powertcp::stats {
namespace {

FlowRecord rec(std::int64_t size, sim::TimePs fct, sim::TimePs ideal) {
  FlowRecord r;
  r.size_bytes = size;
  r.start = 0;
  r.finish = fct;
  r.ideal = ideal;
  return r;
}

TEST(FlowRecord, SlowdownIsFctOverIdeal) {
  EXPECT_DOUBLE_EQ(rec(1000, 200, 100).slowdown(), 2.0);
  EXPECT_DOUBLE_EQ(rec(1000, 100, 100).slowdown(), 1.0);
}

TEST(FlowRecord, ZeroIdealYieldsZero) {
  EXPECT_DOUBLE_EQ(rec(1000, 100, 0).slowdown(), 0.0);
}

TEST(FctRecorder, RangeFilterIsExclusiveInclusive) {
  FctRecorder f;
  f.record(rec(10'000, 100, 100));
  f.record(rec(10'001, 100, 100));
  // (0, 10'000] catches the first only.
  EXPECT_EQ(f.slowdowns_in_range(0, 10'000).count(), 1u);
  EXPECT_EQ(f.slowdowns_in_range(10'000, 20'000).count(), 1u);
}

TEST(FctRecorder, ShortAndLongBucketDefinitions) {
  FctRecorder f;
  f.record(rec(5'000, 100, 100));       // short (<10K)
  f.record(rec(500'000, 100, 100));     // neither
  f.record(rec(2'000'000, 100, 100));   // long (>=1M)
  EXPECT_EQ(f.short_flow_slowdowns().count(), 1u);
  EXPECT_EQ(f.long_flow_slowdowns().count(), 1u);
}

TEST(FctRecorder, PaperBucketsMatchFigSixAxis) {
  const auto& buckets = paper_size_buckets();
  ASSERT_EQ(buckets.size(), 8u);
  EXPECT_EQ(buckets.front().upper_bytes, 5'000);
  EXPECT_EQ(buckets.front().label, "5K");
  EXPECT_EQ(buckets.back().upper_bytes, 30'000'000);
  EXPECT_EQ(buckets.back().label, "30M");
}

TEST(FctRecorder, BucketPercentilesMarkEmptyBuckets) {
  FctRecorder f;
  f.record(rec(3'000, 300, 100));  // 3x slowdown in the 5K bucket
  const auto row = f.bucket_percentiles(99);
  ASSERT_EQ(row.size(), paper_size_buckets().size());
  EXPECT_NEAR(row[0], 3.0, 1e-9);
  for (std::size_t i = 1; i < row.size(); ++i) EXPECT_EQ(row[i], -1.0);
}

TEST(FctRecorder, AllSlowdownsCoversEveryFlow) {
  FctRecorder f;
  for (int i = 1; i <= 10; ++i) {
    f.record(rec(i * 1000, i * 100, 100));
  }
  EXPECT_EQ(f.all_slowdowns().count(), 10u);
  EXPECT_DOUBLE_EQ(f.all_slowdowns().max(), 10.0);
}

}  // namespace
}  // namespace powertcp::stats
