#include "stats/percentiles.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace powertcp::stats {
namespace {

Samples make(std::initializer_list<double> vs) {
  Samples s;
  for (double v : vs) s.add(v);
  return s;
}

TEST(Samples, SummaryIsSerializableForm) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  const SampleSummary sum = s.summary();
  EXPECT_EQ(sum.count, 100u);
  EXPECT_DOUBLE_EQ(sum.min, 1.0);
  EXPECT_DOUBLE_EQ(sum.max, 100.0);
  EXPECT_DOUBLE_EQ(sum.mean, 50.5);
  EXPECT_DOUBLE_EQ(sum.p50, s.percentile(50));
  EXPECT_DOUBLE_EQ(sum.p99, s.percentile(99));
  EXPECT_DOUBLE_EQ(sum.p999, s.percentile(99.9));
  const auto named = sum.named_values();
  ASSERT_EQ(named.size(), 7u);
  EXPECT_STREQ(named.front().first, "min");
  EXPECT_STREQ(named.back().first, "p99.9");
  EXPECT_DOUBLE_EQ(named.back().second, sum.p999);
}

TEST(Samples, EmptySummaryIsSafeAndNaN) {
  const SampleSummary sum = Samples().summary();
  EXPECT_EQ(sum.count, 0u);
  EXPECT_TRUE(std::isnan(sum.p50));
  EXPECT_TRUE(std::isnan(sum.max));
}

TEST(Samples, EmptyThrowsOnStatistics) {
  Samples s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.percentile(50), std::logic_error);
  EXPECT_THROW(s.min(), std::logic_error);
  EXPECT_THROW(s.mean(), std::logic_error);
}

TEST(Samples, SingleValueIsEveryPercentile) {
  const Samples s = make({42.0});
  EXPECT_DOUBLE_EQ(s.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 42.0);
}

TEST(Samples, MedianInterpolates) {
  const Samples s = make({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.percentile(50), 2.5);
}

TEST(Samples, PercentilesOnKnownLadder) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.percentile(50), 50.5, 0.01);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.01);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
}

TEST(Samples, MinMaxMean) {
  const Samples s = make({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(Samples, StddevOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(make({2.0, 2.0, 2.0}).stddev(), 0.0);
}

TEST(Samples, StddevSample) {
  // Known sample stddev of {2,4,4,4,5,5,7,9} is ~2.138 (n-1).
  const Samples s = make({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);
}

TEST(Samples, InsertionAfterQueryResorts) {
  Samples s = make({1.0, 3.0});
  EXPECT_DOUBLE_EQ(s.percentile(100), 3.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 10.0);
}

TEST(Samples, CdfAt) {
  const Samples s = make({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf_at(100.0), 1.0);
}

TEST(Samples, CdfCurveMonotone) {
  Samples s;
  for (int i = 0; i < 57; ++i) s.add(static_cast<double>((i * 37) % 101));
  const auto curve = s.cdf_curve(10);
  ASSERT_EQ(curve.size(), 10u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].first, curve[i - 1].first);
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Samples, CdfCurveEmptyInput) {
  Samples s;
  EXPECT_TRUE(s.cdf_curve(5).empty());
}

}  // namespace
}  // namespace powertcp::stats
