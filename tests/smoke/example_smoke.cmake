# Generic end-to-end smoke test: run an example binary, require exit
# code 0 and at least one output line matching EXPECT_REGEX (a data or
# summary line, so an example that prints only headers still fails).
if(NOT DEFINED EXAMPLE_BIN OR NOT DEFINED EXPECT_REGEX)
  message(FATAL_ERROR "pass -DEXAMPLE_BIN=<binary> -DEXPECT_REGEX=<regex>")
endif()

execute_process(COMMAND ${EXAMPLE_BIN}
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err
                RESULT_VARIABLE rc)

if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${EXAMPLE_BIN} exited with ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()

string(REGEX MATCH "${EXPECT_REGEX}" matched "${out}")
if(matched STREQUAL "")
  message(FATAL_ERROR "${EXAMPLE_BIN} output did not match '${EXPECT_REGEX}':\n${out}")
endif()
