#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "workload/flow_size_dist.hpp"
#include "workload/traffic_gen.hpp"

namespace powertcp::workload {
namespace {

TEST(FlowSizeDistribution, WebsearchMeanIsHeavy) {
  const auto d = FlowSizeDistribution::websearch();
  // Analytic mean of the embedded CDF is ~1.7 MB (DCTCP web search).
  EXPECT_NEAR(d.mean_bytes(), 1.7e6, 0.2e6);
  EXPECT_EQ(d.max_bytes(), 30'000'000);
}

TEST(FlowSizeDistribution, SampleMeanMatchesAnalyticMean) {
  const auto d = FlowSizeDistribution::websearch();
  sim::Rng rng(5);
  double sum = 0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(d.sample(rng));
  EXPECT_NEAR(sum / kN, d.mean_bytes(), d.mean_bytes() * 0.05);
}

TEST(FlowSizeDistribution, SamplesRespectSupport) {
  const auto d = FlowSizeDistribution::websearch();
  sim::Rng rng(6);
  for (int i = 0; i < 10'000; ++i) {
    const auto v = d.sample(rng);
    EXPECT_GE(v, d.min_bytes());
    EXPECT_LE(v, d.max_bytes());
  }
}

TEST(FlowSizeDistribution, EmpiricalCdfTracksSpec) {
  const auto d = FlowSizeDistribution::websearch();
  sim::Rng rng(7);
  int below_100k = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    if (d.sample(rng) <= 100'000) ++below_100k;
  }
  // Spec: CDF(80K) = 0.53, CDF(200K) = 0.60 -> P(<=100K) ~ 0.54.
  EXPECT_NEAR(static_cast<double>(below_100k) / kN, 0.54, 0.02);
}

TEST(FlowSizeDistribution, FixedIsDegenerate) {
  const auto d = FlowSizeDistribution::fixed(4'242);
  sim::Rng rng(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d.sample(rng), 4'242);
  EXPECT_DOUBLE_EQ(d.mean_bytes(), 4'242.0);
}

TEST(FlowSizeDistribution, RejectsMalformedCdfs) {
  EXPECT_THROW(FlowSizeDistribution({}), std::invalid_argument);
  EXPECT_THROW(FlowSizeDistribution({{100, 0.5}}), std::invalid_argument);
  EXPECT_THROW(FlowSizeDistribution({{100, 0.7}, {50, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(FlowSizeDistribution({{100, 0.7}, {200, 0.4}}),
               std::invalid_argument);
}

TEST(GeneratePoisson, HitsTargetLoad) {
  PoissonConfig cfg;
  cfg.load_per_host = 0.5;
  cfg.host_bw = sim::Bandwidth::gbps(10);
  cfg.stop = sim::milliseconds(500);
  cfg.n_hosts = 8;
  const auto dist = FlowSizeDistribution::fixed(100'000);
  sim::Rng rng(11);
  const auto plan = generate_poisson(cfg, dist, rng);
  double total_bytes = 0;
  for (const auto& a : plan) total_bytes += static_cast<double>(a.size_bytes);
  const double offered_bps = total_bytes * 8.0 / 0.5;  // 500 ms window
  const double target_bps =
      cfg.load_per_host * cfg.host_bw.bps() * cfg.n_hosts;
  EXPECT_NEAR(offered_bps / target_bps, 1.0, 0.1);
}

TEST(GeneratePoisson, ArrivalsSortedAndInWindow) {
  PoissonConfig cfg;
  cfg.load_per_host = 0.3;
  cfg.host_bw = sim::Bandwidth::gbps(25);
  cfg.start = sim::milliseconds(1);
  cfg.stop = sim::milliseconds(5);
  cfg.n_hosts = 4;
  sim::Rng rng(12);
  const auto plan =
      generate_poisson(cfg, FlowSizeDistribution::fixed(50'000), rng);
  ASSERT_FALSE(plan.empty());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_GT(plan[i].start, cfg.start);
    EXPECT_LT(plan[i].start, cfg.stop);
    if (i > 0) {
      EXPECT_GE(plan[i].start, plan[i - 1].start);
    }
    EXPECT_NE(plan[i].src_host, plan[i].dst_host);
  }
}

TEST(GeneratePoisson, GroupConstraintKeepsTrafficInterRack) {
  PoissonConfig cfg;
  cfg.load_per_host = 0.5;
  cfg.host_bw = sim::Bandwidth::gbps(25);
  cfg.stop = sim::milliseconds(20);
  cfg.n_hosts = 16;
  cfg.hosts_per_group = 4;
  sim::Rng rng(13);
  const auto plan =
      generate_poisson(cfg, FlowSizeDistribution::fixed(50'000), rng);
  for (const auto& a : plan) {
    EXPECT_NE(a.src_host / 4, a.dst_host / 4);
  }
}

TEST(GenerateIncast, FanInResponderDistinctAndSynchronized) {
  IncastConfig cfg;
  cfg.requests_per_sec = 1000;
  cfg.request_bytes = 800'000;
  cfg.fan_in = 8;
  cfg.stop = sim::milliseconds(20);
  cfg.n_hosts = 32;
  cfg.hosts_per_group = 4;
  sim::Rng rng(14);
  const auto plan = generate_incast(cfg, rng);
  ASSERT_FALSE(plan.empty());
  EXPECT_EQ(plan.size() % 8, 0u);
  // Group by start time: each burst has 8 distinct responders, one
  // requester, and per-responder share of the request.
  for (std::size_t i = 0; i + 8 <= plan.size(); i += 8) {
    std::set<int> responders;
    for (std::size_t j = i; j < i + 8; ++j) {
      EXPECT_EQ(plan[j].start, plan[i].start);
      EXPECT_EQ(plan[j].dst_host, plan[i].dst_host);
      EXPECT_EQ(plan[j].size_bytes, 100'000);
      responders.insert(plan[j].src_host);
      EXPECT_NE(plan[j].src_host / 4, plan[j].dst_host / 4);
    }
    EXPECT_EQ(responders.size(), 8u);
  }
}

TEST(GenerateIncast, RequiresEnoughHosts) {
  IncastConfig cfg;
  cfg.fan_in = 40;
  cfg.n_hosts = 16;
  cfg.stop = sim::milliseconds(1);
  sim::Rng rng(15);
  EXPECT_THROW(generate_incast(cfg, rng), std::invalid_argument);
}

}  // namespace
}  // namespace powertcp::workload
