/// Burst-granular event engine tests: schedule_burst_at, pop-time
/// merging under a burst budget, and the headline equivalence claim —
/// the logical event sequence (each callback expanded to burst_count()
/// events at its now()) is identical for every budget on both queue
/// backends, and budget 1 is exactly the historical per-event engine.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace powertcp::sim {
namespace {

TEST(Burst, CountedEntryDeliversOneCallbackForManyEvents) {
  Simulator s;
  std::uint32_t seen_count = 0;
  int fired = 0;
  s.schedule_burst_at(nanoseconds(10), 7, [&] {
    ++fired;
    seen_count = s.burst_count();
  });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(seen_count, 7u);
  EXPECT_EQ(s.events_executed(), 7u);
  EXPECT_EQ(s.burst_count(), 1u);  // resets outside the callback
}

TEST(Burst, ZeroCountThrows) {
  Simulator s;
  EXPECT_THROW(s.schedule_burst_at(0, 0, [] {}), std::invalid_argument);
  EXPECT_THROW(s.set_burst_budget(0), std::invalid_argument);
}

TEST(Burst, MergeRunsOnlyTheFirstCallback) {
  // Three same-(time, key) entries under a large budget: counts sum,
  // only the first callback runs, the later two are released uninvoked
  // (the homogeneity contract for nonzero merge keys).
  Simulator s;
  s.set_burst_budget(64);
  std::vector<int> ran;
  std::uint32_t merged = 0;
  for (int i = 0; i < 3; ++i) {
    s.schedule_burst_at(nanoseconds(5), 2,
                        [&, i] {
                          ran.push_back(i);
                          merged = s.burst_count();
                        },
                        /*merge_key=*/9);
  }
  s.run();
  ASSERT_EQ(ran.size(), 1u);
  EXPECT_EQ(ran[0], 0);
  EXPECT_EQ(merged, 6u);
  EXPECT_EQ(s.events_executed(), 6u);
  EXPECT_EQ(s.slot_count(), s.free_slot_count()) << "merged slots leaked";
}

TEST(Burst, KeyZeroAndBudgetOneNeverMerge) {
  for (const std::uint32_t budget : {1u, 64u}) {
    for (const std::uint32_t key : {0u, 5u}) {
      if (budget > 1 && key != 0) continue;  // the merging combination
      Simulator s;
      s.set_burst_budget(budget);
      int fired = 0;
      for (int i = 0; i < 4; ++i) {
        s.schedule_burst_at(nanoseconds(5), 1, [&] { ++fired; }, key);
      }
      s.run();
      EXPECT_EQ(fired, 4) << "budget " << budget << " key " << key;
      EXPECT_EQ(s.events_executed(), 4u);
    }
  }
}

TEST(Burst, MergeStopsAtDifferentKeyOrTime) {
  Simulator s;
  s.set_burst_budget(64);
  std::vector<std::uint32_t> counts;
  const auto record = [&] { counts.push_back(s.burst_count()); };
  // Contiguity in (time, seq) order is what merges: key 7, key 7,
  // key 8 breaks the run, key 7 again starts a fresh one; the last
  // entry is one tick later and never joins.
  s.schedule_burst_at(nanoseconds(5), 1, record, 7);
  s.schedule_burst_at(nanoseconds(5), 1, record, 7);
  s.schedule_burst_at(nanoseconds(5), 1, record, 8);
  s.schedule_burst_at(nanoseconds(5), 1, record, 7);
  s.schedule_burst_at(nanoseconds(5) + 1, 1, record, 7);
  s.run();
  EXPECT_EQ(counts, (std::vector<std::uint32_t>{2, 1, 1, 1}));
  EXPECT_EQ(s.events_executed(), 5u);
}

TEST(Burst, BudgetCapsTheMergedCount) {
  Simulator s;
  s.set_burst_budget(3);
  std::vector<std::uint32_t> counts;
  for (int i = 0; i < 8; ++i) {
    s.schedule_burst_at(nanoseconds(5), 1,
                        [&] { counts.push_back(s.burst_count()); }, 4);
  }
  s.run();
  EXPECT_EQ(counts, (std::vector<std::uint32_t>{3, 3, 2}));
  EXPECT_EQ(s.events_executed(), 8u);
}

TEST(Burst, CancelledEntryInsideTrainIsSkipped) {
  // A tombstone between two live same-key entries must not stop the
  // merge — the pop loop discards it and keeps coalescing.
  Simulator s;
  s.set_burst_budget(64);
  std::vector<std::uint32_t> counts;
  const auto record = [&] { counts.push_back(s.burst_count()); };
  s.schedule_burst_at(nanoseconds(5), 1, record, 3);
  const EventId doomed = s.schedule_burst_at(nanoseconds(5), 1, record, 3);
  s.schedule_burst_at(nanoseconds(5), 1, record, 3);
  s.cancel(doomed);
  s.run();
  EXPECT_EQ(counts, (std::vector<std::uint32_t>{2}));
  EXPECT_EQ(s.events_executed(), 2u);
}

TEST(Burst, CalendarBucketEdgeNeverMergesAcrossDistinctTimes) {
  // Same merge key, adjacent picoseconds, many instants — wherever the
  // calendar's bucket edges fall, merging must group exactly by
  // timestamp, never by bucket. Heap backend pins the same grouping.
  for (const QueueKind kind : {QueueKind::kBinaryHeap, QueueKind::kCalendar}) {
    Simulator s(kind);
    s.set_burst_budget(1024);
    std::vector<std::pair<TimePs, std::uint32_t>> groups;
    for (int inst = 0; inst < 40; ++inst) {
      // Straddle power-of-two boundaries: t = k*4096 - 1, k*4096, +1.
      const TimePs t = static_cast<TimePs>(inst + 1) * 4096 - 1 + (inst % 3);
      for (int j = 0; j < 5; ++j) {
        s.schedule_burst_at(t, 1,
                            [&] { groups.emplace_back(s.now(),
                                                      s.burst_count()); },
                            11);
      }
    }
    s.run();
    ASSERT_EQ(groups.size(), 40u) << "kind " << static_cast<int>(kind);
    for (const auto& [t, n] : groups) {
      EXPECT_EQ(n, 5u) << "at t=" << t;
    }
    EXPECT_EQ(s.events_executed(), 200u);
  }
}

TEST(Burst, LogicalEventSequenceIsBudgetAndBackendInvariant) {
  // The headline equivalence: a randomized workload of mergeable
  // trains, plain events, counted bursts, and cancellations expands to
  // the same logical (time, weight-summed) sequence for budget 1 and
  // budget 64 on both backends.
  const auto trace = [](QueueKind kind, std::uint32_t budget) {
    Simulator s(kind);
    s.set_burst_budget(budget);
    Rng rng(0xC0FFEEull);
    std::vector<TimePs> logical;
    std::uint64_t pending_rounds = 0;
    std::function<void()> expand = [&] {
      for (std::uint32_t i = 0; i < s.burst_count(); ++i) {
        logical.push_back(s.now());
      }
    };
    std::function<void()> driver = [&] {
      logical.push_back(s.now());
      if (++pending_rounds > 300) return;
      const TimePs base = s.now() + 1 +
                          static_cast<TimePs>(rng.uniform() * 1e5);
      // A mergeable train (per-round key avoids cross-round aliasing).
      const std::uint32_t key =
          static_cast<std::uint32_t>(pending_rounds % 17 + 1);
      const int train = 1 + static_cast<int>(rng.uniform() * 6);
      for (int i = 0; i < train; ++i) {
        s.schedule_burst_at(base, 1, expand, key);
      }
      // A counted burst, a plain event, and a cancelled one.
      s.schedule_burst_at(base, 2 + static_cast<std::uint32_t>(
                                        rng.uniform() * 3), expand, 0);
      s.schedule_at(base + 1, expand);
      s.cancel(s.schedule_at(base, expand));
      s.schedule_in(1 + static_cast<TimePs>(rng.uniform() * 1e5), driver);
    };
    s.schedule_at(0, driver);
    s.run();
    return std::make_pair(logical, s.events_executed());
  };
  const auto ref = trace(QueueKind::kBinaryHeap, 1);
  for (const QueueKind kind : {QueueKind::kBinaryHeap, QueueKind::kCalendar}) {
    for (const std::uint32_t budget : {1u, 2u, 64u}) {
      const auto got = trace(kind, budget);
      EXPECT_EQ(got.first, ref.first)
          << "kind " << static_cast<int>(kind) << " budget " << budget;
      EXPECT_EQ(got.second, ref.second);
    }
  }
  EXPECT_GT(ref.first.size(), 1000u);
}

}  // namespace
}  // namespace powertcp::sim
