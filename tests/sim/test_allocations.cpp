/// Allocation-count regression tests for the event engine's hot path.
///
/// This TU replaces the global operator new/delete pair with counting
/// forwards to malloc/free (legal: one replacement per program;
/// affects the whole powertcp_tests binary, which is why the counters
/// are sampled only across tightly scoped regions). The headline test
/// pins the paper-scale property the event-engine rewrite bought:
/// once warmed up, a steady-state data-packet event — tx completion,
/// propagation, receive, ack, cc update, timer re-arm — performs ZERO
/// heap allocations.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "cc/factory.hpp"
#include "harness/telemetry.hpp"
#include "host/host.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "topo/dumbbell.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(align, (n + align - 1) / align * align)) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace powertcp {
namespace {

std::uint64_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

TEST(Allocations, SchedulingRecycledSlotsIsAllocationFree) {
  sim::Simulator s;
  // Warm the slot table, free list, and queue storage.
  for (int i = 0; i < 64; ++i) s.schedule_in(i, [] {});
  s.run();
  const std::uint64_t before = allocations();
  for (int round = 0; round < 1000; ++round) {
    const sim::EventId keep = s.schedule_in(1, [] {});
    const sim::EventId drop = s.schedule_in(2, [] {});
    s.cancel(drop);
    (void)keep;
    s.run();
  }
  EXPECT_EQ(allocations() - before, 0u)
      << "schedule/cancel/fire churn must recycle slots, not allocate";
}

TEST(Allocations, InlineCallbackNeverAllocates) {
  sim::Simulator s;
  s.schedule_in(1, [] {});  // warm one slot
  s.run();
  const std::uint64_t before = allocations();
  // A closure this size (40 bytes with the reference below) heap-
  // allocates inside std::function (16-byte SBO on libstdc++); the
  // engine's inline Callback must not.
  struct Big {
    void* a;
    void* b;
    std::uint64_t c[2];
  };
  Big big{nullptr, nullptr, {1, 2}};
  int fired = 0;
  s.schedule_in(1, [big, &fired] {
    fired += static_cast<int>(big.c[0]);
  });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(allocations() - before, 0u);
}

TEST(Allocations, BurstEventsAreAllocationFree) {
  // The burst engine's pledge: scheduling a counted burst entry,
  // pop-merging a same-key train under a large budget, and releasing
  // the merged-away slots all recycle storage — zero heap allocations
  // per burst event once the slot table and queue are warm.
  sim::Simulator s;
  s.set_burst_budget(64);
  std::uint64_t sum = 0;
  // Warm the slot table and queue storage past the train size.
  for (int i = 0; i < 64; ++i) s.schedule_in(i, [] {});
  s.run();
  const std::uint64_t before = allocations();
  for (int round = 0; round < 1000; ++round) {
    const sim::TimePs t = s.now() + 10;
    for (int i = 0; i < 16; ++i) {
      s.schedule_burst_at(t, 1, [&s, &sum] { sum += s.burst_count(); },
                          /*merge_key=*/1);
    }
    s.schedule_burst_at(t + 1, 8, [&s, &sum] { sum += s.burst_count(); });
    s.run();
  }
  EXPECT_EQ(sum, 1000u * (16 + 8));
  EXPECT_EQ(allocations() - before, 0u)
      << "burst scheduling and pop-merging must not touch the heap";
}

TEST(Allocations, SteadyStatePacketEventsAreAllocationFree) {
  // One long PowerTCP flow over the dumbbell: after warmup every
  // per-packet event chain (tx completion at two ports, propagation,
  // switch forward, receiver ack, sender cc update + RTO re-arm, INT
  // stamping) must run without touching the heap. This is the hot path
  // that dominates paper-scale (--full) wall clock.
  sim::Simulator simulator;
  net::Network network(simulator);
  topo::DumbbellConfig cfg;
  cfg.n_senders = 2;
  topo::Dumbbell topo(network, cfg);

  cc::FlowParams params;
  params.host_bw = cfg.host_bw;
  params.base_rtt = topo.base_rtt();
  params.expected_flows = 2;
  const cc::CcFactory factory = cc::make_factory("powertcp");
  topo.sender(0).start_flow(1, topo.receiver().id(), 1'000'000'000,
                            factory(params), params, 0);
  topo.sender(1).start_flow(2, topo.receiver().id(), 1'000'000'000,
                            factory(params), params, 0);

  // Warm up: rings, slot table, pools, and maps reach their high-water
  // marks well within a millisecond of simulated traffic.
  simulator.run_until(sim::milliseconds(2));
  const std::uint64_t events_before = simulator.events_executed();
  const std::uint64_t before = allocations();
  simulator.run_until(sim::milliseconds(4));
  const std::uint64_t allocs = allocations() - before;
  const std::uint64_t events = simulator.events_executed() - events_before;
  EXPECT_GT(events, 20'000u) << "expected a busy steady state";
  EXPECT_EQ(allocs, 0u) << "heap allocations per steady-state event: "
                        << static_cast<double>(allocs) /
                               static_cast<double>(events);
}

TEST(Allocations, FlightRecorderSamplingIsAllocationFree) {
  // The telemetry pledge: an armed FlightTap adds ZERO heap
  // allocations per sample to the steady-state packet path — all its
  // storage is acquired at construction. The measurement window spans
  // many samples AND at least one ring wrap (capacity 64 at 1us
  // period inside a 2ms window), so the 2:1 downsampling compaction
  // is pinned allocation-free too.
  sim::Simulator simulator;
  net::Network network(simulator);
  topo::DumbbellConfig cfg;
  cfg.n_senders = 2;
  topo::Dumbbell topo(network, cfg);

  cc::FlowParams params;
  params.host_bw = cfg.host_bw;
  params.base_rtt = topo.base_rtt();
  params.expected_flows = 2;
  const cc::CcFactory factory = cc::make_factory("powertcp");
  topo.sender(0).start_flow(1, topo.receiver().id(), 1'000'000'000,
                            factory(params), params, 0);
  topo.sender(1).start_flow(2, topo.receiver().id(), 1'000'000'000,
                            factory(params), params, 0);

  harness::TelemetryConfig tcfg;
  tcfg.enabled = true;
  tcfg.capacity = 64;
  tcfg.sample_every = sim::microseconds(1);
  harness::FlightTap tap(tcfg, simulator, topo.bottleneck_port(),
                         &topo.sender(0), 1, topo.base_rtt(),
                         sim::milliseconds(4));

  simulator.run_until(sim::milliseconds(2));  // warm up, wrap the ring
  const std::uint64_t before = allocations();
  simulator.run_until(sim::milliseconds(4));
  EXPECT_EQ(allocations() - before, 0u)
      << "flight-recorder sampling must not touch the heap";

  const harness::TelemetrySeries series = tap.series();
  EXPECT_FALSE(series.empty());
  EXPECT_GE(series.time.size(), 32u);
  ASSERT_EQ(series.channels.size(), 5u);
}

}  // namespace
}  // namespace powertcp
