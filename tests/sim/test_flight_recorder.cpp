/// FlightRecorder property tests: for arbitrary (capacity, offered
/// tick count) combinations the bounded buffer must keep its
/// invariants — first/last offered samples preserved, strictly
/// monotone timestamps, size bounded by capacity, and a stored set
/// that is exactly the stride-decimated subset of the offered ticks.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "sim/flight_recorder.hpp"
#include "sim/simulator.hpp"

namespace powertcp {
namespace {

/// Offers `n` ticks at a fixed period carrying value = tick index,
/// finalizes, and returns the recorder for inspection.
void offer_ticks(sim::FlightRecorder& rec, std::uint64_t n,
                 sim::TimePs period, double* counter) {
  for (std::uint64_t i = 0; i < n; ++i) {
    *counter = static_cast<double>(i);
    rec.tick(static_cast<sim::TimePs>(i) * period);
  }
  rec.finalize();
}

TEST(FlightRecorder, StoresEverySampleUntilFull) {
  double v = 0;
  sim::FlightRecorder rec(64);
  rec.add_channel("v", [&v] { return v; });
  offer_ticks(rec, 64, sim::microseconds(10), &v);
  ASSERT_EQ(rec.size(), 64u);
  EXPECT_EQ(rec.stride(), 1u);
  for (std::size_t i = 0; i < rec.size(); ++i) {
    EXPECT_EQ(rec.time(i), static_cast<sim::TimePs>(i) * sim::microseconds(10));
    EXPECT_EQ(rec.value(0, i), static_cast<double>(i));
  }
}

TEST(FlightRecorder, WrapDownsamplesTwoToOne) {
  double v = 0;
  sim::FlightRecorder rec(64);
  rec.add_channel("v", [&v] { return v; });
  // One tick past capacity: the buffer compacts once and the stride
  // doubles; stored ticks are exactly the even offered indices.
  offer_ticks(rec, 65, sim::microseconds(10), &v);
  EXPECT_EQ(rec.stride(), 2u);
  ASSERT_EQ(rec.size(), 33u);
  for (std::size_t i = 0; i < rec.size(); ++i) {
    EXPECT_EQ(rec.value(0, i), static_cast<double>(2 * i));
  }
}

TEST(FlightRecorder, PropertyInvariantsOverRandomShapes) {
  std::mt19937_64 rng(20260808);
  for (int round = 0; round < 200; ++round) {
    const std::size_t capacity = 2 + rng() % 96;
    const std::uint64_t offered = 1 + rng() % 4096;
    const sim::TimePs period =
        static_cast<sim::TimePs>(1 + rng() % 1000) * sim::nanoseconds(100);

    sim::FlightRecorder rec(capacity);
    double v = 0;
    rec.add_channel("v", [&v] { return v; });
    offer_ticks(rec, offered, period, &v);

    // Bounded: capacity is rounded up to even, +1 for the finalize
    // append of the last offered sample.
    EXPECT_LE(rec.size(), capacity + 1 + capacity % 2);
    ASSERT_GE(rec.size(), 1u);

    // First and last offered samples survive every compaction.
    EXPECT_EQ(rec.time(0), 0);
    EXPECT_EQ(rec.value(0, 0), 0.0);
    EXPECT_EQ(rec.time(rec.size() - 1),
              static_cast<sim::TimePs>(offered - 1) * period);
    EXPECT_EQ(rec.value(0, rec.size() - 1), static_cast<double>(offered - 1));

    // Strictly monotone timestamps, and every stored sample is a real
    // offered one (value == tick index, time == index * period).
    for (std::size_t i = 0; i < rec.size(); ++i) {
      if (i > 0) {
        EXPECT_LT(rec.time(i - 1), rec.time(i));
      }
      const auto idx = static_cast<std::uint64_t>(rec.value(0, i));
      EXPECT_EQ(rec.time(i), static_cast<sim::TimePs>(idx) * period);
    }

    // All but the finalize()-appended tail sample sit on the final
    // stride grid with uniform spacing.
    for (std::size_t i = 0; i + 2 < rec.size(); ++i) {
      EXPECT_EQ(rec.time(i + 1) - rec.time(i),
                static_cast<sim::TimePs>(rec.stride()) * period);
    }
  }
}

TEST(FlightRecorder, MultiChannelRowsShareTimestamps) {
  sim::FlightRecorder rec(16);
  double a = 0, b = 0;
  rec.add_channel("a", [&a] { return a; });
  rec.add_channel("b", [&b] { return b; });
  for (int i = 0; i < 100; ++i) {
    a = i;
    b = 10.0 * i;
    rec.tick(sim::microseconds(i));
  }
  rec.finalize();
  ASSERT_EQ(rec.channel_count(), 2u);
  for (std::size_t i = 0; i < rec.size(); ++i) {
    EXPECT_EQ(rec.value(1, i), 10.0 * rec.value(0, i))
        << "channels sampled at different ticks";
  }
}

TEST(FlightRecorder, FinalizeIsIdempotentAndPreservesShortSeries) {
  sim::FlightRecorder rec(8);
  double v = 3.5;
  rec.add_channel("v", [&v] { return v; });
  rec.tick(0);
  rec.finalize();
  rec.finalize();
  ASSERT_EQ(rec.size(), 1u);  // single sample: no duplicate tail
  EXPECT_EQ(rec.value(0, 0), 3.5);
}

TEST(FlightRecorder, ArmedTicksTrackSimulationTime) {
  sim::Simulator s;
  std::int64_t q = 0;
  sim::FlightRecorder rec(32);
  rec.add_channel("q", [&q] { return static_cast<double>(q); });
  rec.arm(s, sim::microseconds(5), sim::microseconds(100));
  // Mutate the probed state mid-run; samples must reflect sim time.
  s.schedule_at(sim::microseconds(42), [&q] { q = 7; });
  s.run_until(sim::microseconds(200));
  rec.finalize();
  ASSERT_EQ(rec.size(), 21u);  // t = 0, 5us, ..., 100us
  EXPECT_EQ(rec.time(rec.size() - 1), sim::microseconds(100));
  for (std::size_t i = 0; i < rec.size(); ++i) {
    EXPECT_EQ(rec.value(0, i), rec.time(i) >= sim::microseconds(42) ? 7 : 0);
  }
}

TEST(FlightRecorder, RejectsInvalidSetup) {
  EXPECT_THROW(sim::FlightRecorder(1), std::invalid_argument);
  // The simulator must outlive the armed recorder (~FlightRecorder
  // cancels its pending tick), so it is declared first.
  sim::Simulator s;
  sim::FlightRecorder rec(8);
  EXPECT_THROW(rec.add_channel("broken", {}), std::invalid_argument);
  rec.add_channel("v", [] { return 0.0; });
  rec.tick(0);
  EXPECT_THROW(rec.add_channel("late", [] { return 0.0; }),
               std::logic_error);
  EXPECT_THROW(rec.arm(s, 0, sim::microseconds(1)), std::invalid_argument);
  rec.arm(s, sim::microseconds(1), sim::microseconds(2));
  EXPECT_THROW(rec.arm(s, sim::microseconds(1), sim::microseconds(2)),
               std::logic_error);
}

}  // namespace
}  // namespace powertcp
