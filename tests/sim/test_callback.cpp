#include "sim/callback.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <utility>

namespace powertcp::sim {
namespace {

TEST(Callback, DefaultIsEmpty) {
  Callback cb;
  EXPECT_FALSE(static_cast<bool>(cb));
  Callback null_cb = nullptr;
  EXPECT_FALSE(static_cast<bool>(null_cb));
}

TEST(Callback, InvokesStoredLambda) {
  int hits = 0;
  Callback cb = [&hits] { ++hits; };
  ASSERT_TRUE(static_cast<bool>(cb));
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(Callback, MoveTransfersOwnership) {
  int hits = 0;
  Callback a = [&hits] { ++hits; };
  Callback b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(Callback, MoveAssignReleasesPreviousTarget) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> alive = token;
  Callback holder = [token] { (void)*token; };
  token.reset();
  EXPECT_FALSE(alive.expired());  // the closure keeps it alive
  int hits = 0;
  holder = Callback([&hits] { ++hits; });
  EXPECT_TRUE(alive.expired());  // old closure destroyed on assignment
  holder();
  EXPECT_EQ(hits, 1);
}

TEST(Callback, ResetAndNullptrAssignmentDestroyTarget) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> alive = token;
  Callback cb = [token] { (void)token; };
  token.reset();
  EXPECT_FALSE(alive.expired());
  cb = nullptr;
  EXPECT_TRUE(alive.expired());
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(Callback, DestructorDestroysTarget) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> alive = token;
  {
    Callback cb = [token] { (void)token; };
    token.reset();
    EXPECT_FALSE(alive.expired());
  }
  EXPECT_TRUE(alive.expired());
}

TEST(Callback, HoldsAStdFunctionCopy) {
  // The engine's recursive-scheduling idiom: a std::function rescheduled
  // by copy from inside its own invocation must fit inline.
  static_assert(sizeof(std::function<void()>) <= Callback::kCapacity);
  int hits = 0;
  std::function<void()> fn = [&hits] { ++hits; };
  Callback cb = fn;
  cb();
  EXPECT_EQ(hits, 1);
}

TEST(Callback, MoveOnlyCapturesWork) {
  auto p = std::make_unique<int>(41);
  int got = 0;
  Callback cb = [p = std::move(p), &got] { got = *p + 1; };
  cb();
  EXPECT_EQ(got, 42);
}

TEST(Callback, CapacityHoldsTheHotPathClosures) {
  // The per-packet closures capture (this, pool handle): must fit with
  // lots of headroom, as must a typical harness capture set.
  struct Handle {
    std::uint32_t a, b;
  };
  void* self = nullptr;
  auto tx = [self, h = Handle{1, 2}] { (void)self, (void)h; };
  static_assert(sizeof(tx) <= Callback::kCapacity);
  Callback cb = tx;
  cb();
}

}  // namespace
}  // namespace powertcp::sim
