#include "sim/rng.hpp"

#include <gtest/gtest.h>

namespace powertcp::sim {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.next_u64() != b.next_u64()) ++differing;
  }
  EXPECT_GT(differing, 30);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(5.0, 6.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 6.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(0, 7);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 7);
    saw_lo |= v == 0;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng r(11);
  double sum = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / kN, 4.0, 0.1);
}

TEST(Rng, ExponentialNonNegative) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.exponential(1.0), 0.0);
}

}  // namespace
}  // namespace powertcp::sim
