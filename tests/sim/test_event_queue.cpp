#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace powertcp::sim {
namespace {

std::vector<EventEntry> drain(EventQueue& q) {
  std::vector<EventEntry> out;
  while (const EventEntry* top = q.peek()) {
    out.push_back(*top);
    q.pop();
  }
  return out;
}

void expect_same_drain(const std::vector<EventEntry>& a,
                       const std::vector<EventEntry>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time) << "at " << i;
    EXPECT_EQ(a[i].sched, b[i].sched) << "at " << i;
    EXPECT_EQ(a[i].seq, b[i].seq) << "at " << i;
    EXPECT_EQ(a[i].slot, b[i].slot) << "at " << i;
  }
}

TEST(CalendarEventQueue, PopsInTimeThenSeqOrder) {
  CalendarEventQueue q;
  q.push({nanoseconds(30), 0, 1, 0});
  q.push({nanoseconds(10), 0, 2, 1});
  q.push({nanoseconds(10), 0, 3, 2});
  q.push({nanoseconds(20), 0, 4, 3});
  const auto order = drain(q);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0].seq, 2u);
  EXPECT_EQ(order[1].seq, 3u);
  EXPECT_EQ(order[2].seq, 4u);
  EXPECT_EQ(order[3].seq, 1u);
  EXPECT_EQ(q.size(), 0u);
}

TEST(CalendarEventQueue, CausalTimestampBreaksSameTimeTies) {
  // Same delivery instant, different causal (schedule-time) stamps: the
  // earlier-scheduled event pops first even when its seq is larger —
  // the cross-shard merge relies on this middle key. Equal stamps fall
  // back to seq (FIFO).
  for (const QueueKind kind : {QueueKind::kBinaryHeap, QueueKind::kCalendar}) {
    auto q = make_event_queue(kind);
    q->push({nanoseconds(50), nanoseconds(40), 1, 0});
    q->push({nanoseconds(50), nanoseconds(10), 2, 1});
    q->push({nanoseconds(50), nanoseconds(40), 3, 2});
    q->push({nanoseconds(50), nanoseconds(25), 4, 3});
    const auto order = drain(*q);
    ASSERT_EQ(order.size(), 4u) << "kind " << static_cast<int>(kind);
    EXPECT_EQ(order[0].seq, 2u);
    EXPECT_EQ(order[1].seq, 4u);
    EXPECT_EQ(order[2].seq, 1u);  // sched tie with 3: lower seq first
    EXPECT_EQ(order[3].seq, 3u);
  }
}

TEST(CalendarEventQueue, MatchesHeapOnRandomizedWorkload) {
  // Dense bursts, sparse gaps, heavy same-time ties, and interleaved
  // pops — the pop sequence must be identical to the binary heap's.
  BinaryHeapEventQueue heap;
  CalendarEventQueue cal;
  Rng rng(0xC0FFEEull);
  TimePs clock = 0;
  std::uint64_t seq = 1;
  std::vector<EventEntry> heap_order, cal_order;
  for (int round = 0; round < 200; ++round) {
    const int pushes = 1 + static_cast<int>(rng.uniform() * 40);
    for (int i = 0; i < pushes; ++i) {
      const double r = rng.uniform();
      TimePs delta;
      if (r < 0.4) {
        delta = 0;  // tie storm
      } else if (r < 0.9) {
        delta = static_cast<TimePs>(rng.uniform() * 1e6);  // dense ~us
      } else {
        delta = static_cast<TimePs>(rng.uniform() * 1e11);  // sparse ~100ms
      }
      // sched = the push-time clock, as the engine stamps it; heavy
      // time ties make the (sched, seq) tail of the key do real work.
      const EventEntry e{clock + delta, clock, seq,
                         static_cast<std::uint32_t>(seq)};
      ++seq;
      heap.push(e);
      cal.push(e);
    }
    const int pops = static_cast<int>(rng.uniform() * pushes * 1.2);
    for (int i = 0; i < pops && heap.size() > 0; ++i) {
      const EventEntry* a = heap.peek();
      const EventEntry* b = cal.peek();
      ASSERT_NE(a, nullptr);
      ASSERT_NE(b, nullptr);
      clock = a->time;  // future pushes never go below the pop floor
      heap_order.push_back(*a);
      cal_order.push_back(*b);
      heap.pop();
      cal.pop();
    }
    ASSERT_EQ(heap.size(), cal.size());
  }
  // Drain the rest.
  auto rest_a = drain(heap);
  auto rest_b = drain(cal);
  heap_order.insert(heap_order.end(), rest_a.begin(), rest_a.end());
  cal_order.insert(cal_order.end(), rest_b.begin(), rest_b.end());
  expect_same_drain(heap_order, cal_order);
}

TEST(CalendarEventQueue, ResizesUnderGrowthAndShrink) {
  CalendarEventQueue q;
  const std::size_t initial_buckets = q.bucket_count();
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    q.push({static_cast<TimePs>(i) * 1000, 0, i + 1,
            static_cast<std::uint32_t>(i)});
  }
  EXPECT_GT(q.bucket_count(), initial_buckets);
  TimePs last = -1;
  std::size_t n = 0;
  while (const EventEntry* top = q.peek()) {
    EXPECT_GE(top->time, last);
    last = top->time;
    q.pop();
    ++n;
  }
  EXPECT_EQ(n, 10'000u);
  // Shrink pressure: the table contracts once nearly empty.
  EXPECT_LT(q.bucket_count(), 4096u);
}

TEST(CalendarEventQueue, AllEventsAtOneInstant) {
  CalendarEventQueue q;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    q.push({microseconds(5), 0, i + 1, static_cast<std::uint32_t>(i)});
  }
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const EventEntry* top = q.peek();
    ASSERT_NE(top, nullptr);
    EXPECT_EQ(top->seq, i + 1);  // FIFO among ties
    q.pop();
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(SimulatorQueueKind, CalendarRunMatchesHeapRun) {
  // The same self-scheduling workload on both backends: identical
  // execution traces (event count, per-event now(), final clock).
  const auto trace = [](QueueKind kind) {
    Simulator s(kind);
    std::vector<TimePs> times;
    Rng rng(42);
    std::function<void()> tick = [&] {
      times.push_back(s.now());
      if (times.size() >= 5000) return;
      // A little burst plus a far timer, some cancelled.
      const EventId doomed =
          s.schedule_in(microseconds(3), [&times] { times.push_back(-1); });
      s.schedule_in(static_cast<TimePs>(rng.uniform() * 1e6) + 1, tick);
      if (rng.uniform() < 0.7) s.cancel(doomed);
    };
    s.schedule_at(0, tick);
    s.run();
    return times;
  };
  const auto heap_trace = trace(QueueKind::kBinaryHeap);
  const auto cal_trace = trace(QueueKind::kCalendar);
  EXPECT_EQ(heap_trace, cal_trace);
  EXPECT_GE(heap_trace.size(), 5000u);
}

TEST(SimulatorQueueKind, FarFutureTombstoneDoesNotCorruptTheFloor) {
  // Regression: discarding a cancelled far-future event's tombstone
  // raised the calendar's search floor to the tombstone's time; events
  // scheduled afterwards (legal: the clock is far below it) sat under
  // the floor and the year-walk returned a non-minimum — time went
  // backwards relative to the heap backend.
  for (const QueueKind kind : {QueueKind::kBinaryHeap, QueueKind::kCalendar}) {
    Simulator s(kind);
    const EventId far =
        s.schedule_at(microseconds(1'000'033), [] { FAIL(); });
    s.cancel(far);
    s.run_until(microseconds(1'000'010));  // discards the tombstone
    std::vector<TimePs> fired;
    s.schedule_at(microseconds(1'000'033), [&] { fired.push_back(s.now()); });
    s.schedule_at(microseconds(1'000'018), [&] { fired.push_back(s.now()); });
    s.run();
    ASSERT_EQ(fired.size(), 2u) << "kind " << static_cast<int>(kind);
    EXPECT_EQ(fired[0], microseconds(1'000'018));
    EXPECT_EQ(fired[1], microseconds(1'000'033));
  }
}

TEST(SimulatorQueueKind, CancelAndTombstonesWorkOnCalendar) {
  Simulator s(QueueKind::kCalendar);
  int fired = 0;
  const EventId a = s.schedule_at(nanoseconds(10), [&] { ++fired; });
  s.schedule_at(nanoseconds(20), [&] { ++fired; });
  s.cancel(a);
  EXPECT_EQ(s.tombstones(), 1u);
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.tombstones(), 0u);
  EXPECT_FALSE(s.pending());
}

}  // namespace
}  // namespace powertcp::sim
