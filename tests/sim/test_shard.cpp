#include "sim/shard.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "net/shard_link.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

/// Sequential-vs-sharded equivalence and the same-picosecond boundary
/// rules. The ShardedEngine.* fixtures run real worker threads and are
/// part of the tsan preset's test filter (CMakePresets.json).

namespace powertcp::sim {
namespace {

// ---------------------------------------------------------------------
// Boundary ordering at identical picosecond timestamps. These drive a
// plain Simulator through schedule_from — no threads — because the tie
// rules are a property of the event key, not of the barrier protocol.
// ---------------------------------------------------------------------

TEST(ShardedEngine, IngestedDeliveryPopsAtItsCausalScheduleTime) {
  // A remote delivery sent at t=10 and a local event scheduled at t=40
  // collide at the same picosecond t=50. The sequential engine would
  // have scheduled the remote one first (at 10), so it must pop first —
  // and the causal keys differ, so this tie is NOT ambiguous.
  Simulator s;
  std::vector<int> order;
  s.schedule_at(nanoseconds(40), [&] {
    s.schedule_at(nanoseconds(50), [&] { order.push_back(1); });
  });
  s.schedule_from(nanoseconds(10), nanoseconds(50),
                  [&] { order.push_back(2); }, 2);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
  EXPECT_EQ(s.boundary_ambiguities(), 0u);
}

TEST(ShardedEngine, EqualKeyMixedOriginTieIsCountedAmbiguous) {
  // Same delivery picosecond AND same causal schedule time, from two
  // different causal domains: no key can order this pair the way the
  // sequential engine would have, so the detector must count it.
  Simulator s;
  std::vector<int> order;
  s.schedule_at(nanoseconds(40), [&] {
    s.schedule_at(nanoseconds(50), [&] { order.push_back(1); });
  });
  s.schedule_from(nanoseconds(40), nanoseconds(50),
                  [&] { order.push_back(2); }, 3);
  s.run();
  // seq decides the pop order (the remote entry was created first
  // here); the point is that the ambiguity is DETECTED, so the harness
  // can fall back to the sequential engine.
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
  EXPECT_EQ(s.boundary_ambiguities(), 1u);
}

TEST(ShardedEngine, EqualKeyLocalTiesAreNotAmbiguous) {
  // Two local events from the same causal moment tie on (time, sched):
  // seq order IS the sequential order, nothing to detect.
  Simulator s;
  std::vector<int> order;
  s.schedule_at(nanoseconds(40), [&] {
    s.schedule_at(nanoseconds(50), [&] { order.push_back(1); });
    s.schedule_at(nanoseconds(50), [&] { order.push_back(2); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.boundary_ambiguities(), 0u);
}

TEST(ShardedEngine, ScheduleFromValidatesOriginAndCausality) {
  Simulator s;
  EXPECT_THROW(s.schedule_from(0, nanoseconds(1), [] {}, 0),
               std::invalid_argument);
  EXPECT_THROW(s.schedule_from(nanoseconds(2), nanoseconds(1), [] {}, 2),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Engine-level runs with real worker threads.
// ---------------------------------------------------------------------

TEST(ShardedEngine, SingleShardNeverOpensWindows) {
  ShardedSimulator eng(1);
  int fired = 0;
  std::function<void()> tick = [&] {
    if (++fired < 100) eng.shard(0).schedule_in(nanoseconds(7), tick);
  };
  eng.shard(0).schedule_at(0, tick);
  eng.run_until(microseconds(10));
  EXPECT_EQ(fired, 100);
  EXPECT_EQ(eng.windows(), 0u);
  EXPECT_EQ(eng.events_executed(), 100u);
  EXPECT_EQ(eng.shard(0).now(), microseconds(10));
}

TEST(ShardedEngine, IndependentShardsAdvanceInLockstepWindows) {
  ShardedSimulator eng(4);
  eng.set_lookahead(nanoseconds(100));
  std::array<int, 4> fired{};
  // The chains outlive every queued copy; owning the functions here
  // (rather than a self-captured shared_ptr) keeps LeakSanitizer happy.
  std::array<std::function<void()>, 4> ticks;
  for (int d = 0; d < 4; ++d) {
    ticks[static_cast<std::size_t>(d)] = [&eng, &fired, &ticks, d] {
      if (++fired[static_cast<std::size_t>(d)] < 1000) {
        eng.shard(d).schedule_in(nanoseconds(13 + d),
                                 ticks[static_cast<std::size_t>(d)]);
      }
    };
    eng.shard(d).schedule_at(0, ticks[static_cast<std::size_t>(d)]);
  }
  eng.run_until(microseconds(50));
  for (int d = 0; d < 4; ++d) {
    EXPECT_EQ(fired[static_cast<std::size_t>(d)], 1000) << "shard " << d;
    EXPECT_EQ(eng.shard(d).now(), microseconds(50));
  }
  EXPECT_GT(eng.windows(), 0u);
  EXPECT_EQ(eng.events_executed(), 4000u);
  EXPECT_EQ(eng.boundary_ambiguities(), 0u);
}

TEST(ShardedEngine, EventExceptionAbortsTheRunAndRethrows) {
  ShardedSimulator eng(2);
  eng.set_lookahead(nanoseconds(100));
  eng.shard(1).schedule_at(nanoseconds(50),
                           [] { throw std::runtime_error("boom"); });
  eng.shard(0).schedule_at(nanoseconds(10), [] {});
  EXPECT_THROW(eng.run_until(microseconds(1)), std::runtime_error);
}

// ---------------------------------------------------------------------
// Randomized sequential-vs-sharded trace equivalence.
//
// Two causal domains exchange timestamped messages: each runs a
// self-rescheduling local chain, occasionally sends to the other
// (propagation >= kDelay, the lookahead), and receptions echo local
// follow-ups and bounded replies. The same seeded process runs once on
// one Simulator (domain sends become schedule_at at the send moment —
// the sequential engine's own chronology) and once on a two-shard
// engine with barrier-drained mailboxes feeding schedule_from. The
// per-domain execution traces must match event for event.
// ---------------------------------------------------------------------

constexpr TimePs kDelay = nanoseconds(500);

struct Mail {
  TimePs sent_at = 0;
  TimePs deliver_at = 0;
  int ttl = 0;
};

struct Domain {
  Rng rng{1};
  int ticks = 0;
  std::vector<std::pair<TimePs, int>> trace;  // (execution time, tag)
};

/// The process logic, shared by both runs. `send(src, mail)` is the
/// only seam: sequential scheduling vs mailbox + ingest.
template <typename SimOf, typename Send>
struct Process {
  std::array<Domain, 2>& doms;
  SimOf sim_of;  // Simulator& (int domain)
  Send send;     // void (int src, Mail)

  void tick(int d) {
    Domain& dom = doms[static_cast<std::size_t>(d)];
    Simulator& s = sim_of(d);
    dom.trace.emplace_back(s.now(), 0);
    if (++dom.ticks < 400) {
      const TimePs delta = 1 + static_cast<TimePs>(dom.rng.next_u64() %
                                                   microseconds(1));
      s.schedule_in(delta, [this, d] { tick(d); });
    }
    if (dom.rng.next_u64() % 10 < 3) {
      const TimePs jitter =
          static_cast<TimePs>(dom.rng.next_u64() % nanoseconds(200));
      send(d, Mail{s.now(), s.now() + kDelay + jitter, 3});
    }
  }

  void receive(int d, int ttl) {
    Domain& dom = doms[static_cast<std::size_t>(d)];
    Simulator& s = sim_of(d);
    dom.trace.emplace_back(s.now(), 100 + ttl);
    const TimePs delta =
        1 + static_cast<TimePs>(dom.rng.next_u64() % nanoseconds(300));
    s.schedule_in(delta, [this, d] {
      doms[static_cast<std::size_t>(d)].trace.emplace_back(sim_of(d).now(),
                                                           1);
    });
    if (ttl > 0 && dom.rng.next_u64() % 2 == 0) {
      const TimePs jitter =
          static_cast<TimePs>(dom.rng.next_u64() % nanoseconds(200));
      send(d, Mail{s.now(), s.now() + kDelay + jitter, ttl - 1});
    }
  }
};

std::array<Domain, 2> run_sequential(std::uint64_t seed, TimePs horizon) {
  std::array<Domain, 2> doms;
  doms[0].rng = Rng(seed);
  doms[1].rng = Rng(seed ^ 0x9E3779B97F4A7C15ull);
  Simulator s;
  auto sim_of = [&](int) -> Simulator& { return s; };
  using ProcessT = Process<decltype(sim_of), std::function<void(int, Mail)>>;
  ProcessT* pp = nullptr;
  std::function<void(int, Mail)> send = [&](int src, Mail m) {
    // The sequential engine schedules the delivery at the send moment,
    // stamping sched = now — exactly what schedule_from reproduces.
    const int dst = 1 - src;
    s.schedule_at(m.deliver_at, [&, dst, ttl = m.ttl] {
      pp->receive(dst, ttl);
    });
  };
  ProcessT p{doms, sim_of, send};
  pp = &p;
  s.schedule_at(0, [&] { p.tick(0); });
  s.schedule_at(0, [&] { p.tick(1); });
  s.run_until(horizon);
  return doms;
}

std::array<Domain, 2> run_sharded(std::uint64_t seed, TimePs horizon,
                                  std::uint64_t* ambiguities) {
  std::array<Domain, 2> doms;
  doms[0].rng = Rng(seed);
  doms[1].rng = Rng(seed ^ 0x9E3779B97F4A7C15ull);
  ShardedSimulator eng(2);
  eng.set_lookahead(kDelay);
  // Producer-side mailboxes; pushes happen inside windows, drains at
  // barriers, which order them (same discipline as SpscRing's spill).
  std::array<std::vector<Mail>, 2> outbox;
  auto sim_of = [&](int d) -> Simulator& { return eng.shard(d); };
  using ProcessT = Process<decltype(sim_of), std::function<void(int, Mail)>>;
  ProcessT* pp = nullptr;
  std::function<void(int, Mail)> send = [&](int src, Mail m) {
    outbox[static_cast<std::size_t>(src)].push_back(m);
  };
  ProcessT p{doms, sim_of, send};
  pp = &p;
  for (int d = 0; d < 2; ++d) {
    eng.set_ingest_hook(d, [&, d] {
      auto& box = outbox[static_cast<std::size_t>(1 - d)];
      // Same merge key as net::ShardRouter: (deliver_at, sent_at), with
      // push order (= source execution order) breaking exact ties.
      std::stable_sort(box.begin(), box.end(),
                       [](const Mail& a, const Mail& b) {
                         if (a.deliver_at != b.deliver_at) {
                           return a.deliver_at < b.deliver_at;
                         }
                         return a.sent_at < b.sent_at;
                       });
      for (const Mail& m : box) {
        eng.shard(d).schedule_from(
            m.sent_at, m.deliver_at,
            [pp, d, ttl = m.ttl] { pp->receive(d, ttl); },
            static_cast<std::uint32_t>(2 - d));
      }
      box.clear();
    });
  }
  eng.shard(0).schedule_at(0, [&] { p.tick(0); });
  eng.shard(1).schedule_at(0, [&] { p.tick(1); });
  eng.run_until(horizon);
  *ambiguities = eng.boundary_ambiguities();
  return doms;
}

TEST(ShardedEngine, RandomizedCrossShardTraceMatchesSequential) {
  const TimePs horizon = milliseconds(2);
  for (const std::uint64_t seed : {7ull, 42ull, 1234ull, 0xBEEFull}) {
    const auto seq = run_sequential(seed, horizon);
    std::uint64_t ambiguities = 0;
    const auto shard = run_sharded(seed, horizon, &ambiguities);
    for (int d = 0; d < 2; ++d) {
      ASSERT_GT(seq[static_cast<std::size_t>(d)].trace.size(), 400u)
          << "seed " << seed << " domain " << d;
      EXPECT_EQ(shard[static_cast<std::size_t>(d)].trace,
                seq[static_cast<std::size_t>(d)].trace)
          << "seed " << seed << " domain " << d;
    }
    // The random timestamps keep cross-domain keys distinct, so the
    // detector certifies the equivalence the EXPECTs just checked.
    EXPECT_EQ(ambiguities, 0u) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------
// Cut-graph lookahead: registration rules, the Floyd–Warshall influence
// bounds, and the wider windows they open over the uniform protocol.
// ---------------------------------------------------------------------

TEST(ShardedEngine, CutEdgeRejectsBadPairsAndWeights) {
  ShardedSimulator eng(3);
  EXPECT_THROW(eng.add_cut_edge(-1, 0, nanoseconds(1)),
               std::invalid_argument);
  EXPECT_THROW(eng.add_cut_edge(0, 3, nanoseconds(1)), std::invalid_argument);
  EXPECT_THROW(eng.add_cut_edge(1, 1, nanoseconds(1)), std::invalid_argument);
  EXPECT_THROW(eng.add_cut_edge(0, 1, 0), std::invalid_argument);
  EXPECT_FALSE(eng.has_cut_graph());
  eng.add_cut_edge(0, 1, nanoseconds(5));
  EXPECT_TRUE(eng.has_cut_graph());
}

TEST(ShardedEngine, InfluenceBoundIsInfiniteWithoutACutGraph) {
  ShardedSimulator eng(2);
  EXPECT_EQ(eng.influence_bound(0, 1), kTimeInfinity);
  EXPECT_THROW(eng.influence_bound(0, 2), std::invalid_argument);
}

TEST(ShardedEngine, InfluenceBoundFollowsRelayPathsAndCycles) {
  // Directed triangle 0 -> 1 -> 2 -> 0: every pair relates only
  // through it, so the bounds are path sums, and self-influence is the
  // full cycle — never zero.
  ShardedSimulator eng(3);
  eng.add_cut_edge(0, 1, nanoseconds(300));
  eng.add_cut_edge(1, 2, nanoseconds(500));
  eng.add_cut_edge(2, 0, nanoseconds(700));
  EXPECT_EQ(eng.influence_bound(0, 1), nanoseconds(300));
  EXPECT_EQ(eng.influence_bound(0, 2), nanoseconds(800));
  EXPECT_EQ(eng.influence_bound(1, 0), nanoseconds(1200));
  EXPECT_EQ(eng.influence_bound(2, 1), nanoseconds(1000));
  EXPECT_EQ(eng.influence_bound(0, 0), nanoseconds(1500));
  EXPECT_EQ(eng.influence_bound(1, 1), nanoseconds(1500));
  // Re-registering a pair keeps the minimum; a genuinely shorter edge
  // tightens every bound routed through it.
  eng.add_cut_edge(1, 2, nanoseconds(900));  // looser: 500 stands
  EXPECT_EQ(eng.influence_bound(1, 2), nanoseconds(500));
  eng.add_cut_edge(2, 1, nanoseconds(100));
  EXPECT_EQ(eng.influence_bound(1, 1), nanoseconds(600));  // 1 -> 2 -> 1
}

TEST(ShardedEngine, UnreachablePairsStayUnconstrained) {
  ShardedSimulator eng(3);
  eng.add_cut_edge(0, 1, nanoseconds(10));
  EXPECT_EQ(eng.influence_bound(1, 0), kTimeInfinity);
  EXPECT_EQ(eng.influence_bound(0, 0), kTimeInfinity);  // no cycle back
  EXPECT_EQ(eng.influence_bound(2, 1), kTimeInfinity);
}

TEST(ShardedEngine, CutGraphBatchesWindowsBeyondTheUniformLookahead) {
  // Two independent tick chains under the two protocols. The cut graph
  // registers only 0 -> 1, so shard 0 is unconstrained (its first
  // window reaches the horizon) and shard 1 is released the moment
  // shard 0 idles — a handful of barrier rounds where the uniform
  // protocol pays one per lookahead of simulated time.
  const TimePs horizon = microseconds(100);
  const TimePs w = nanoseconds(200);
  // Chains owned outside the engine (no self-captured shared_ptr — it
  // would cycle and leak under LeakSanitizer).
  const auto drive = [](ShardedSimulator& eng,
                        std::array<std::function<void()>, 2>& ticks) {
    for (int d = 0; d < 2; ++d) {
      Simulator* shard = &eng.shard(d);
      ticks[static_cast<std::size_t>(d)] = [shard, &ticks, d] {
        shard->schedule_in(nanoseconds(17),
                           ticks[static_cast<std::size_t>(d)]);
      };
      shard->schedule_at(0, ticks[static_cast<std::size_t>(d)]);
    }
  };

  ShardedSimulator uniform(2);
  std::array<std::function<void()>, 2> uniform_ticks;
  uniform.set_lookahead(w);
  drive(uniform, uniform_ticks);
  uniform.run_until(horizon);

  ShardedSimulator cut(2);
  std::array<std::function<void()>, 2> cut_ticks;
  cut.set_lookahead(w);  // plan-sanity floor; the graph supersedes it
  cut.add_cut_edge(0, 1, w);
  drive(cut, cut_ticks);
  cut.run_until(horizon);

  EXPECT_EQ(cut.events_executed(), uniform.events_executed());
  EXPECT_GT(uniform.windows(), 100u);
  EXPECT_LT(cut.windows(), 10u);
  EXPECT_EQ(cut.boundary_ambiguities(), 0u);
}

// ---------------------------------------------------------------------
// Randomized relay-cut equivalence: the domains live on shards 0 and 2
// and exchange mail exclusively through a relay hop on shard 1 — the
// shape of the per-pod fat-tree plan, where pods meet only in the core
// shard. The engine sees only the per-hop cut edges; the per-pair
// bounds it derives (2 x kDelay end to end) must keep both domains'
// traces byte-equal to the sequential engine's.
// ---------------------------------------------------------------------

struct RelayMail {
  TimePs sent_at = 0;     ///< domain send moment (hop-1 sched time)
  TimePs relay_at = 0;    ///< relay execution (hop-2 sched time)
  TimePs deliver_at = 0;  ///< final delivery at the peer domain
  int dst = 0;
  int ttl = 0;
};

/// Widens a Process Mail into the two-hop schedule: the Mail's
/// deliver_at becomes the relay arrival and the second hop adds another
/// kDelay plus a jitter drawn HERE, from the sending domain's rng — the
/// seam runs at the same logical point in both engines, so the streams
/// stay aligned.
RelayMail relay_route(std::array<Domain, 2>& doms, int src, const Mail& m) {
  RelayMail rm;
  rm.sent_at = m.sent_at;
  rm.relay_at = m.deliver_at;
  const TimePs jitter = static_cast<TimePs>(
      doms[static_cast<std::size_t>(src)].rng.next_u64() % nanoseconds(200));
  rm.deliver_at = rm.relay_at + kDelay + jitter;
  rm.dst = 1 - src;
  rm.ttl = m.ttl;
  return rm;
}

std::array<Domain, 2> run_sequential_relay(std::uint64_t seed,
                                           TimePs horizon) {
  std::array<Domain, 2> doms;
  doms[0].rng = Rng(seed);
  doms[1].rng = Rng(seed ^ 0x9E3779B97F4A7C15ull);
  Simulator s;
  auto sim_of = [&](int) -> Simulator& { return s; };
  using ProcessT = Process<decltype(sim_of), std::function<void(int, Mail)>>;
  ProcessT* pp = nullptr;
  std::function<void(int, Mail)> send = [&](int src, Mail m) {
    const RelayMail rm = relay_route(doms, src, m);
    s.schedule_at(rm.relay_at, [&, rm] {
      s.schedule_at(rm.deliver_at,
                    [&, rm] { pp->receive(rm.dst, rm.ttl); });
    });
  };
  ProcessT p{doms, sim_of, send};
  pp = &p;
  s.schedule_at(0, [&] { p.tick(0); });
  s.schedule_at(0, [&] { p.tick(1); });
  s.run_until(horizon);
  return doms;
}

std::array<Domain, 2> run_sharded_relay(std::uint64_t seed, TimePs horizon,
                                        std::uint64_t* ambiguities) {
  std::array<Domain, 2> doms;
  doms[0].rng = Rng(seed);
  doms[1].rng = Rng(seed ^ 0x9E3779B97F4A7C15ull);
  ShardedSimulator eng(3);
  eng.set_lookahead(kDelay);  // plan-sanity floor; the graph supersedes it
  eng.add_cut_edge(0, 1, kDelay);
  eng.add_cut_edge(1, 0, kDelay);
  eng.add_cut_edge(1, 2, kDelay);
  eng.add_cut_edge(2, 1, kDelay);
  const auto shard_of = [](int d) { return d == 0 ? 0 : 2; };
  auto sim_of = [&](int d) -> Simulator& { return eng.shard(shard_of(d)); };
  // Single-writer mailboxes, read only at barriers (same discipline as
  // the two-shard fixture above): domains feed the relay, the relay
  // feeds the domains.
  std::array<std::vector<RelayMail>, 2> to_relay;   // by source domain
  std::array<std::vector<RelayMail>, 2> to_domain;  // by dest domain
  using ProcessT = Process<decltype(sim_of), std::function<void(int, Mail)>>;
  ProcessT* pp = nullptr;
  std::function<void(int, Mail)> send = [&](int src, Mail m) {
    to_relay[static_cast<std::size_t>(src)].push_back(
        relay_route(doms, src, m));
  };
  ProcessT p{doms, sim_of, send};
  pp = &p;
  // Relay ingest: merge both domains' hop-1 mail on the usual
  // (deliver, sched) key; the forwarded hop is stamped with the relay's
  // own clock, exactly as the sequential engine's nested schedule_at.
  eng.set_ingest_hook(1, [&] {
    std::vector<RelayMail> batch;
    for (auto& box : to_relay) {
      batch.insert(batch.end(), box.begin(), box.end());
      box.clear();
    }
    std::stable_sort(batch.begin(), batch.end(),
                     [](const RelayMail& a, const RelayMail& b) {
                       if (a.relay_at != b.relay_at) {
                         return a.relay_at < b.relay_at;
                       }
                       return a.sent_at < b.sent_at;
                     });
    for (const RelayMail& m : batch) {
      eng.shard(1).schedule_from(
          m.sent_at, m.relay_at,
          [&eng, &to_domain, m] {
            RelayMail fwd = m;
            fwd.sent_at = eng.shard(1).now();
            to_domain[static_cast<std::size_t>(fwd.dst)].push_back(fwd);
          },
          // Origin token of the SENDING domain's shard (0 -> 1, 2 -> 3).
          static_cast<std::uint32_t>(m.dst == 1 ? 1 : 3));
    }
  });
  for (int d = 0; d < 2; ++d) {
    eng.set_ingest_hook(shard_of(d), [&, d] {
      auto& box = to_domain[static_cast<std::size_t>(d)];
      std::stable_sort(box.begin(), box.end(),
                       [](const RelayMail& a, const RelayMail& b) {
                         if (a.deliver_at != b.deliver_at) {
                           return a.deliver_at < b.deliver_at;
                         }
                         return a.sent_at < b.sent_at;
                       });
      for (const RelayMail& m : box) {
        eng.shard(shard_of(d)).schedule_from(
            m.sent_at, m.deliver_at,
            [pp, d, ttl = m.ttl] { pp->receive(d, ttl); },
            2u);  // origin: the relay shard
      }
      box.clear();
    });
  }
  eng.shard(0).schedule_at(0, [&] { p.tick(0); });
  eng.shard(2).schedule_at(0, [&] { p.tick(1); });
  eng.run_until(horizon);
  *ambiguities = eng.boundary_ambiguities();
  return doms;
}

TEST(ShardedEngine, RandomizedRelayCutTraceMatchesSequential) {
  const TimePs horizon = milliseconds(2);
  for (const std::uint64_t seed : {3ull, 99ull, 0xC0FFEEull}) {
    const auto seq = run_sequential_relay(seed, horizon);
    std::uint64_t ambiguities = 0;
    const auto shard = run_sharded_relay(seed, horizon, &ambiguities);
    for (int d = 0; d < 2; ++d) {
      ASSERT_GT(seq[static_cast<std::size_t>(d)].trace.size(), 400u)
          << "seed " << seed << " domain " << d;
      EXPECT_EQ(shard[static_cast<std::size_t>(d)].trace,
                seq[static_cast<std::size_t>(d)].trace)
          << "seed " << seed << " domain " << d;
    }
    EXPECT_EQ(ambiguities, 0u) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------
// The SPSC ring under the channel: order preserved through overflow,
// reusable after a drain.
// ---------------------------------------------------------------------

TEST(ShardedEngine, SpscRingOverflowPreservesSendOrder) {
  net::SpscRing ring(8);
  for (std::uint64_t i = 0; i < 100; ++i) {
    net::ShardMessage m;
    m.deliver_at = static_cast<TimePs>(i);
    m.src_seq = i;
    ring.push(std::move(m));
  }
  std::vector<net::ShardMessage> out;
  ring.drain_into(out);
  ASSERT_EQ(out.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(out[i].src_seq, i);
  // The spill resets: the ring is usable for the next window.
  net::ShardMessage again;
  again.src_seq = 7;
  ring.push(std::move(again));
  out.clear();
  ring.drain_into(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].src_seq, 7u);
}

TEST(ShardedEngine, SpscRingRejectsNonPowerOfTwoCapacity) {
  EXPECT_THROW(net::SpscRing(12), std::invalid_argument);
  EXPECT_THROW(net::SpscRing(0), std::invalid_argument);
}

}  // namespace
}  // namespace powertcp::sim
