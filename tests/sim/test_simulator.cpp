#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace powertcp::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_FALSE(s.pending());
}

TEST(Simulator, ExecutesEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(nanoseconds(30), [&] { order.push_back(3); });
  s.schedule_at(nanoseconds(10), [&] { order.push_back(1); });
  s.schedule_at(nanoseconds(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, TiesBreakInSchedulingOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    s.schedule_at(nanoseconds(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, NowAdvancesToEventTime) {
  Simulator s;
  TimePs seen = -1;
  s.schedule_at(microseconds(7), [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, microseconds(7));
  EXPECT_EQ(s.now(), microseconds(7));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator s;
  TimePs seen = -1;
  s.schedule_at(microseconds(5), [&] {
    s.schedule_in(microseconds(3), [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, microseconds(8));
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator s;
  s.schedule_at(microseconds(10), [&] {
    EXPECT_THROW(s.schedule_at(microseconds(5), [] {}),
                 std::invalid_argument);
  });
  s.run();
}

TEST(Simulator, EventsCanScheduleAtCurrentTime) {
  Simulator s;
  int fired = 0;
  s.schedule_at(microseconds(1), [&] {
    s.schedule_at(s.now(), [&] { ++fired; });
  });
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  int fired = 0;
  const EventId id = s.schedule_at(nanoseconds(10), [&] { ++fired; });
  s.cancel(id);
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelAfterFireIsNoOp) {
  Simulator s;
  int fired = 0;
  const EventId id = s.schedule_at(nanoseconds(10), [&] { ++fired; });
  s.run();
  s.cancel(id);  // already executed: harmless
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelOnlyAffectsTargetEvent) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(nanoseconds(10), [&] { order.push_back(1); });
  const EventId id = s.schedule_at(nanoseconds(10), [&] { order.push_back(2); });
  s.schedule_at(nanoseconds(10), [&] { order.push_back(3); });
  s.cancel(id);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Simulator, CancelDecrementsPendingImmediately) {
  // Regression: pending() used to count cancelled-but-unpopped events as
  // live, so a drain loop keyed on pending() saw phantom work.
  Simulator s;
  const EventId a = s.schedule_at(nanoseconds(10), [] {});
  const EventId b = s.schedule_at(nanoseconds(20), [] {});
  EXPECT_TRUE(s.pending());
  s.cancel(a);
  EXPECT_TRUE(s.pending());
  s.cancel(b);
  EXPECT_FALSE(s.pending());  // only tombstones remain
  s.run();
  EXPECT_EQ(s.events_executed(), 0u);
}

TEST(Simulator, RepeatedCancelOfSameIdDecrementsOnce) {
  Simulator s;
  const EventId a = s.schedule_at(nanoseconds(10), [] {});
  s.schedule_at(nanoseconds(20), [] {});
  s.cancel(a);
  s.cancel(a);
  s.cancel(a);
  EXPECT_TRUE(s.pending());  // the second event is still live
}

TEST(Simulator, StaleCancelBookkeepingStaysBounded) {
  // Regression: cancelling an already-fired (or default) id used to
  // insert a seq into a lazy-deletion set that was never erased,
  // growing without bound across a long run.
  Simulator s;
  for (int round = 0; round < 100; ++round) {
    const EventId id = s.schedule_at(s.now(), [] {});
    s.run();
    for (int i = 0; i < 10; ++i) s.cancel(id);  // fired: stale handle
    s.cancel(EventId{});                        // never scheduled
    EXPECT_EQ(s.tombstones(), 0u);
    EXPECT_FALSE(s.pending());
  }
}

TEST(Simulator, TombstonesDrainOnPop) {
  Simulator s;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(s.schedule_at(nanoseconds(i), [] {}));
  }
  for (int i = 0; i < 10; i += 2) s.cancel(ids[static_cast<size_t>(i)]);
  EXPECT_EQ(s.tombstones(), 5u);
  s.run();
  EXPECT_EQ(s.tombstones(), 0u);
  EXPECT_EQ(s.events_executed(), 5u);
}

TEST(Simulator, StaleHandleDoesNotCancelSlotReuser) {
  // A freed slot may be reused by a newer event; the old handle's seq
  // no longer matches, so cancelling it must not touch the new event.
  Simulator s;
  const EventId old_id = s.schedule_at(nanoseconds(10), [] {});
  s.cancel(old_id);
  int fired = 0;
  s.schedule_at(nanoseconds(20), [&] { ++fired; });  // reuses the slot
  s.cancel(old_id);                                  // stale: must no-op
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelInsideRunningCallbackOfSelfIsNoOp) {
  Simulator s;
  EventId self{};
  int fired = 0;
  self = s.schedule_at(nanoseconds(10), [&] {
    ++fired;
    s.cancel(self);  // own event is already executing: harmless
  });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.tombstones(), 0u);
}

TEST(Simulator, RunUntilLeavesLaterEventsPending) {
  Simulator s;
  int fired = 0;
  s.schedule_at(microseconds(1), [&] { ++fired; });
  s.schedule_at(microseconds(10), [&] { ++fired; });
  s.run_until(microseconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), microseconds(5));
  EXPECT_TRUE(s.pending());
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilExecutesEventAtBoundary) {
  Simulator s;
  int fired = 0;
  s.schedule_at(microseconds(5), [&] { ++fired; });
  s.run_until(microseconds(5));
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, StopHaltsRun) {
  Simulator s;
  int fired = 0;
  s.schedule_at(nanoseconds(1), [&] {
    ++fired;
    s.stop();
  });
  s.schedule_at(nanoseconds(2), [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  s.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator s;
  for (int i = 0; i < 5; ++i) s.schedule_at(nanoseconds(i), [] {});
  s.run();
  EXPECT_EQ(s.events_executed(), 5u);
}

TEST(Simulator, RecursiveSchedulingChains) {
  Simulator s;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 100) s.schedule_in(nanoseconds(10), tick);
  };
  s.schedule_at(0, tick);
  s.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(s.now(), nanoseconds(990));
}

TEST(TimeHelpers, UnitConversionsAreExact) {
  EXPECT_EQ(nanoseconds(1), 1'000);
  EXPECT_EQ(microseconds(1), 1'000'000);
  EXPECT_EQ(milliseconds(1), 1'000'000'000);
  EXPECT_EQ(seconds(1), 1'000'000'000'000);
  EXPECT_EQ(from_seconds(1e-6), microseconds(1));
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2)), 2.0);
  EXPECT_DOUBLE_EQ(to_microseconds(microseconds(3)), 3.0);
}

TEST(TimeHelpers, FormatPicksUnits) {
  EXPECT_EQ(format_time(picoseconds(500)), "500ps");
  EXPECT_EQ(format_time(microseconds(12) + nanoseconds(500)), "12.500us");
  EXPECT_EQ(format_time(milliseconds(3)), "3.000ms");
  EXPECT_EQ(format_time(kTimeInfinity), "inf");
}

TEST(Bandwidth, TxTimeIsExactAtCommonRates) {
  // 1 byte at 100 Gbps = 80 ps; a 1048-byte frame = 83.84 ns.
  EXPECT_EQ(Bandwidth::gbps(100).tx_time(1), 80);
  EXPECT_EQ(Bandwidth::gbps(100).tx_time(1048), 83'840);
  // 25 Gbps: 320 ps per byte.
  EXPECT_EQ(Bandwidth::gbps(25).tx_time(1000), 320'000);
}

TEST(Bandwidth, BdpMatchesHandComputation) {
  // 25 Gbps x 20 us = 62.5 KB.
  EXPECT_EQ(Bandwidth::gbps(25).bdp_bytes(microseconds(20)), 62'500);
}

TEST(Bandwidth, BytesInWindow) {
  EXPECT_EQ(Bandwidth::gbps(8).bytes_in(microseconds(1)), 1'000);
}

}  // namespace
}  // namespace powertcp::sim
