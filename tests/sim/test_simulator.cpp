#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace powertcp::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_FALSE(s.pending());
}

TEST(Simulator, ExecutesEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(nanoseconds(30), [&] { order.push_back(3); });
  s.schedule_at(nanoseconds(10), [&] { order.push_back(1); });
  s.schedule_at(nanoseconds(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, TiesBreakInSchedulingOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    s.schedule_at(nanoseconds(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, NowAdvancesToEventTime) {
  Simulator s;
  TimePs seen = -1;
  s.schedule_at(microseconds(7), [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, microseconds(7));
  EXPECT_EQ(s.now(), microseconds(7));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator s;
  TimePs seen = -1;
  s.schedule_at(microseconds(5), [&] {
    s.schedule_in(microseconds(3), [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, microseconds(8));
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator s;
  s.schedule_at(microseconds(10), [&] {
    EXPECT_THROW(s.schedule_at(microseconds(5), [] {}),
                 std::invalid_argument);
  });
  s.run();
}

TEST(Simulator, EventsCanScheduleAtCurrentTime) {
  Simulator s;
  int fired = 0;
  s.schedule_at(microseconds(1), [&] {
    s.schedule_at(s.now(), [&] { ++fired; });
  });
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  int fired = 0;
  const EventId id = s.schedule_at(nanoseconds(10), [&] { ++fired; });
  s.cancel(id);
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelAfterFireIsNoOp) {
  Simulator s;
  int fired = 0;
  const EventId id = s.schedule_at(nanoseconds(10), [&] { ++fired; });
  s.run();
  s.cancel(id);  // already executed: harmless
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelOnlyAffectsTargetEvent) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(nanoseconds(10), [&] { order.push_back(1); });
  const EventId id = s.schedule_at(nanoseconds(10), [&] { order.push_back(2); });
  s.schedule_at(nanoseconds(10), [&] { order.push_back(3); });
  s.cancel(id);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Simulator, RunUntilLeavesLaterEventsPending) {
  Simulator s;
  int fired = 0;
  s.schedule_at(microseconds(1), [&] { ++fired; });
  s.schedule_at(microseconds(10), [&] { ++fired; });
  s.run_until(microseconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), microseconds(5));
  EXPECT_TRUE(s.pending());
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilExecutesEventAtBoundary) {
  Simulator s;
  int fired = 0;
  s.schedule_at(microseconds(5), [&] { ++fired; });
  s.run_until(microseconds(5));
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, StopHaltsRun) {
  Simulator s;
  int fired = 0;
  s.schedule_at(nanoseconds(1), [&] {
    ++fired;
    s.stop();
  });
  s.schedule_at(nanoseconds(2), [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  s.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator s;
  for (int i = 0; i < 5; ++i) s.schedule_at(nanoseconds(i), [] {});
  s.run();
  EXPECT_EQ(s.events_executed(), 5u);
}

TEST(Simulator, RecursiveSchedulingChains) {
  Simulator s;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 100) s.schedule_in(nanoseconds(10), tick);
  };
  s.schedule_at(0, tick);
  s.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(s.now(), nanoseconds(990));
}

TEST(TimeHelpers, UnitConversionsAreExact) {
  EXPECT_EQ(nanoseconds(1), 1'000);
  EXPECT_EQ(microseconds(1), 1'000'000);
  EXPECT_EQ(milliseconds(1), 1'000'000'000);
  EXPECT_EQ(seconds(1), 1'000'000'000'000);
  EXPECT_EQ(from_seconds(1e-6), microseconds(1));
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2)), 2.0);
  EXPECT_DOUBLE_EQ(to_microseconds(microseconds(3)), 3.0);
}

TEST(TimeHelpers, FormatPicksUnits) {
  EXPECT_EQ(format_time(picoseconds(500)), "500ps");
  EXPECT_EQ(format_time(microseconds(12) + nanoseconds(500)), "12.500us");
  EXPECT_EQ(format_time(milliseconds(3)), "3.000ms");
  EXPECT_EQ(format_time(kTimeInfinity), "inf");
}

TEST(Bandwidth, TxTimeIsExactAtCommonRates) {
  // 1 byte at 100 Gbps = 80 ps; a 1048-byte frame = 83.84 ns.
  EXPECT_EQ(Bandwidth::gbps(100).tx_time(1), 80);
  EXPECT_EQ(Bandwidth::gbps(100).tx_time(1048), 83'840);
  // 25 Gbps: 320 ps per byte.
  EXPECT_EQ(Bandwidth::gbps(25).tx_time(1000), 320'000);
}

TEST(Bandwidth, BdpMatchesHandComputation) {
  // 25 Gbps x 20 us = 62.5 KB.
  EXPECT_EQ(Bandwidth::gbps(25).bdp_bytes(microseconds(20)), 62'500);
}

TEST(Bandwidth, BytesInWindow) {
  EXPECT_EQ(Bandwidth::gbps(8).bytes_in(microseconds(1)), 1'000);
}

}  // namespace
}  // namespace powertcp::sim
